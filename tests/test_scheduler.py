"""Tests for the round-robin scheduler and syscall semantics."""

import pytest

from repro.virt import syscalls as sc
from repro.virt.process import SimProcess, SimThread, ThreadState
from repro.virt.scheduler import Scheduler, SyscallResult


def thread(name="t", affinity=None, process=None):
    return SimThread(iter(()), name=name, affinity=affinity,
                     process=process)


class TestPicking:
    def test_round_robin_order(self):
        sched = Scheduler(num_cores=1)
        a, b = thread("a"), thread("b")
        sched.add_thread(a)
        sched.add_thread(b)
        assert sched.pick_thread(0, 0) is a
        sched.deschedule(0)
        a.state = ThreadState.RUNNABLE
        sched._run_queue.append(a)
        assert sched.pick_thread(0, 0) is b

    def test_affinity_respected(self):
        sched = Scheduler(num_cores=2)
        pinned = thread("pinned", affinity={1})
        sched.add_thread(pinned)
        assert sched.pick_thread(0, 0) is None
        assert sched.pick_thread(1, 0) is pinned

    def test_pick_empty(self):
        assert Scheduler(1).pick_thread(0, 0) is None

    def test_pick_marks_running(self):
        sched = Scheduler(1)
        t = thread()
        sched.add_thread(t)
        sched.pick_thread(0, 5)
        assert t.state == ThreadState.RUNNING
        assert t.core == 0
        assert sched.running_thread(0) is t

    def test_add_requires_simthread(self):
        with pytest.raises(TypeError):
            Scheduler(1).add_thread("not a thread")


class TestPreemption:
    def test_preempt_after_quantum_with_waiters(self):
        sched = Scheduler(1, quantum=100)
        a, b = thread("a"), thread("b")
        sched.add_thread(a)
        sched.add_thread(b)
        sched.pick_thread(0, 0)
        assert sched.preempt_if_due(0, 50) is None      # quantum not up
        assert sched.preempt_if_due(0, 150) is a        # preempted
        assert a.state == ThreadState.RUNNABLE
        # b runs next, a is queued behind it.
        assert sched.pick_thread(0, 150) is b

    def test_no_preempt_without_waiters(self):
        sched = Scheduler(1, quantum=100)
        a = thread("a")
        sched.add_thread(a)
        sched.pick_thread(0, 0)
        assert sched.preempt_if_due(0, 1000) is None

    def test_no_preempt_for_affinity_mismatched_waiters(self):
        sched = Scheduler(2, quantum=100)
        a = thread("a")
        pinned = thread("p", affinity={1})
        sched.add_thread(a)
        sched.pick_thread(0, 0)
        sched.add_thread(pinned)
        assert sched.preempt_if_due(0, 1000) is None


class TestFutex:
    def test_wait_blocks_then_wake(self):
        sched = Scheduler(2)
        waiter, waker = thread("waiter"), thread("waker")
        sched.add_thread(waiter)
        sched.add_thread(waker)
        sched.pick_thread(0, 0)
        assert sched.handle_syscall(waiter, sc.FutexWait("k"), 100) == \
            SyscallResult.BLOCKED
        assert waiter.state == ThreadState.BLOCKED
        assert sched.handle_syscall(waker, sc.FutexWake("k"), 200) == \
            SyscallResult.CONTINUE
        assert waiter.state == ThreadState.RUNNABLE
        assert waiter.wake_cycle == 200 + sched.syscall_overhead

    def test_wake_before_wait_not_lost(self):
        """Semaphore-flavoured futex: a stored token satisfies the next
        wait immediately (no lost-wakeup races in workloads)."""
        sched = Scheduler(1)
        t = thread()
        sched.add_thread(t)
        sched.handle_syscall(t, sc.FutexWake("k"), 50)
        assert sched.handle_syscall(t, sc.FutexWait("k"), 100) == \
            SyscallResult.CONTINUE

    def test_wake_count_limits(self):
        sched = Scheduler(4)
        waiters = [thread("w%d" % i) for i in range(3)]
        waker = thread("waker")
        for t in waiters + [waker]:
            sched.add_thread(t)
        for t in waiters:
            sched.handle_syscall(t, sc.FutexWait("k"), 10)
        sched.handle_syscall(waker, sc.FutexWake("k", count=2), 20)
        states = [t.state for t in waiters]
        assert states.count(ThreadState.RUNNABLE) == 2
        assert states.count(ThreadState.BLOCKED) == 1


class TestBarrier:
    def test_last_arrival_releases_all(self):
        sched = Scheduler(4)
        threads = [thread("t%d" % i) for i in range(3)]
        for t in threads:
            sched.add_thread(t)
        assert sched.handle_syscall(threads[0], sc.Barrier("b", 3),
                                    100) == SyscallResult.BLOCKED
        assert sched.handle_syscall(threads[1], sc.Barrier("b", 3),
                                    150) == SyscallResult.BLOCKED
        assert sched.handle_syscall(threads[2], sc.Barrier("b", 3),
                                    300) == SyscallResult.CONTINUE
        assert threads[0].state == ThreadState.RUNNABLE
        assert threads[1].state == ThreadState.RUNNABLE
        # Released at the last arrival's cycle (plus overhead).
        assert threads[0].wake_cycle == 300 + sched.syscall_overhead

    def test_barrier_reusable_with_new_key(self):
        sched = Scheduler(2)
        a, b = thread("a"), thread("b")
        sched.add_thread(a)
        sched.add_thread(b)
        for phase in range(3):
            key = ("b", phase)
            assert sched.handle_syscall(a, sc.Barrier(key, 2), 10) == \
                SyscallResult.BLOCKED
            assert sched.handle_syscall(b, sc.Barrier(key, 2), 20) == \
                SyscallResult.CONTINUE
            a.state = ThreadState.RUNNABLE


class TestLocks:
    def test_uncontended_lock_is_nonblocking(self):
        sched = Scheduler(1)
        t = thread()
        sched.add_thread(t)
        assert sched.handle_syscall(t, sc.Lock("m"), 10) == \
            SyscallResult.CONTINUE

    def test_contended_lock_blocks_and_hands_off(self):
        sched = Scheduler(2)
        a, b = thread("a"), thread("b")
        sched.add_thread(a)
        sched.add_thread(b)
        sched.handle_syscall(a, sc.Lock("m"), 10)
        assert sched.handle_syscall(b, sc.Lock("m"), 20) == \
            SyscallResult.BLOCKED
        sched.handle_syscall(a, sc.Unlock("m"), 100)
        assert b.state == ThreadState.RUNNABLE
        # b now owns the lock: a would block.
        assert sched.handle_syscall(a, sc.Lock("m"), 200) == \
            SyscallResult.BLOCKED

    def test_unlock_by_non_owner_raises(self):
        sched = Scheduler(2)
        a, b = thread("a"), thread("b")
        sched.add_thread(a)
        sched.add_thread(b)
        sched.handle_syscall(a, sc.Lock("m"), 10)
        with pytest.raises(RuntimeError):
            sched.handle_syscall(b, sc.Unlock("m"), 20)

    def test_fifo_lock_handoff(self):
        sched = Scheduler(4)
        owner, w1, w2 = thread("o"), thread("w1"), thread("w2")
        for t in (owner, w1, w2):
            sched.add_thread(t)
        sched.handle_syscall(owner, sc.Lock("m"), 0)
        sched.handle_syscall(w1, sc.Lock("m"), 10)
        sched.handle_syscall(w2, sc.Lock("m"), 20)
        sched.handle_syscall(owner, sc.Unlock("m"), 50)
        assert w1.state == ThreadState.RUNNABLE
        assert w2.state == ThreadState.BLOCKED


class TestSleepAndMisc:
    def test_sleep_wakes_at_deadline(self):
        sched = Scheduler(1)
        t = thread()
        sched.add_thread(t)
        assert sched.handle_syscall(t, sc.Sleep(500), 100) == \
            SyscallResult.BLOCKED
        assert sched.pick_thread(0, 300) is None   # still asleep
        picked = sched.pick_thread(0, 700)
        assert picked is t
        assert t.wake_cycle == 600

    def test_next_wake_cycle(self):
        sched = Scheduler(1)
        t = thread()
        sched.add_thread(t)
        sched.handle_syscall(t, sc.Sleep(500), 100)
        assert sched.next_wake_cycle() == 600

    def test_spawn_adds_thread(self):
        sched = Scheduler(1)
        parent = thread("parent")
        sched.add_thread(parent)
        child_holder = []

        def factory():
            child = thread("child")
            child_holder.append(child)
            return child

        assert sched.handle_syscall(parent, sc.Spawn(factory), 40) == \
            SyscallResult.CONTINUE
        assert child_holder[0] in sched.threads

    def test_thread_exit(self):
        sched = Scheduler(1)
        t = thread()
        sched.add_thread(t)
        assert sched.handle_syscall(t, sc.ThreadExit(), 10) == \
            SyscallResult.EXITED
        assert t.state == ThreadState.DONE
        assert sched.all_done

    def test_gettime_and_yield_nonblocking(self):
        sched = Scheduler(1)
        t = thread()
        sched.add_thread(t)
        assert sched.handle_syscall(t, sc.GetTime(), 0) == \
            SyscallResult.CONTINUE
        assert sched.handle_syscall(t, sc.Yield(), 0) == \
            SyscallResult.CONTINUE

    def test_unknown_syscall(self):
        sched = Scheduler(1)
        t = thread()
        sched.add_thread(t)
        with pytest.raises(TypeError):
            sched.handle_syscall(t, object(), 0)


class TestProcessTree:
    def test_fork_tree_capture(self):
        root = SimProcess("bash")
        java = SimProcess("java", parent=root)
        SimProcess("child-cmd", parent=java)
        names = [p.name for p in root.tree()]
        assert names == ["bash", "java", "child-cmd"]

    def test_process_alive(self):
        proc = SimProcess("p")
        t = thread("t", process=proc)
        assert proc.alive
        t.state = ThreadState.DONE
        assert not proc.alive
