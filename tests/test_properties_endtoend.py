"""End-to-end property tests: simulator invariants over random
workload parameterizations (hypothesis-driven)."""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import small_test_system
from repro.core import ZSim
from repro.workloads.base import KernelSpec, Workload

spec_strategy = st.builds(
    KernelSpec,
    name=st.just("prop"),
    footprint_kb=st.sampled_from([16, 64, 256]),
    mem_ratio=st.floats(0.1, 0.5),
    write_ratio=st.floats(0.0, 0.6),
    pattern=st.sampled_from(["stream", "stride", "random", "chase"]),
    hot_fraction=st.floats(0.0, 0.9),
    fp_ratio=st.floats(0.0, 0.6),
    branch_rand=st.floats(0.0, 0.3),
    ilp=st.integers(1, 8),
    code_blocks=st.integers(1, 8),
    shared_fraction=st.floats(0.0, 0.6),
    shared_kb=st.sampled_from([16, 64]),
    lock_iters=st.sampled_from([0, 120]),
    barrier_iters=st.sampled_from([0, 400]),
    imbalance=st.floats(0.0, 0.3),
    seq_fraction=st.sampled_from([0.0, 0.1]),
    seed=st.integers(1, 10_000),
)


def run(spec, core_model, contention, threads=2, instrs=6_000):
    cfg = small_test_system(num_cores=threads, core_model=core_model)
    workload = Workload(spec, threads)
    sim = ZSim(cfg, workload.make_threads(target_instrs=instrs,
                                          num_threads=threads),
               contention_model=contention)
    result = sim.run(max_intervals=400)
    return result, sim


@settings(max_examples=12, deadline=None)
@given(spec_strategy, st.sampled_from(["simple", "ooo"]))
def test_invariants_hold_for_any_workload(spec, core_model):
    """For any parameterization: the run completes, work is conserved,
    coherence/inclusion hold, and all counters are sane."""
    result, sim = run(spec, core_model, "weave")
    assert result.instrs > 0
    assert result.cycles > 0
    assert 0.0 < result.ipc < 8.0
    assert sim.hierarchy.check_coherence() == []
    assert sim.hierarchy.check_inclusion() == []
    for core in sim.cores:
        assert core.cycle >= 0
        assert core.l1d_misses <= core.loads + core.stores
    # Miss counts can only shrink up the hierarchy.
    total = result.instrs
    assert result.core_mpki("l3") <= result.core_mpki("l2") + 1e-9
    assert result.core_mpki("l2") <= result.core_mpki("l1d") \
        + result.core_mpki("l1i") + 1e-9


@settings(max_examples=8, deadline=None)
@given(spec_strategy)
def test_contention_is_conservative(spec):
    """Weave contention never makes a workload finish earlier than the
    no-contention bound (per-run, same functional stream)."""
    nc, _ = run(spec, "simple", "none")
    wc, _ = run(spec, "simple", "weave")
    assert wc.cycles >= nc.cycles * 0.999
    assert wc.instrs == nc.instrs


@settings(max_examples=8, deadline=None)
@given(spec_strategy, st.integers(0, 3))
def test_determinism_for_any_seed(spec, bw_seed):
    """Same spec + same engine seed -> bit-identical results."""
    def once():
        cfg = small_test_system(num_cores=2, core_model="simple")
        cfg = dataclasses.replace(cfg, boundweave=dataclasses.replace(
            cfg.boundweave, seed=bw_seed))
        workload = Workload(spec, 2)
        sim = ZSim(cfg, workload.make_threads(target_instrs=5_000,
                                              num_threads=2))
        res = sim.run(max_intervals=300)
        return (res.cycles, res.instrs, res.core_mpki("l1d"))
    assert once() == once()


@settings(max_examples=8, deadline=None)
@given(spec_strategy)
def test_weave_delays_nonnegative(spec):
    """Feedback delays are always >= 0 (total delay sanity)."""
    result, sim = run(spec, "ooo", "weave")
    assert result.weave_stats.total_delay >= 0
    assert result.weave_stats.events >= 0
