"""The flight recorder (repro.obs.flight): always-on bounded event
ring + post-mortem capsules on every failure path.

The contract under test: any typed fault, deadlock, signal stop, or
crash leaves a capsule that names what failed and how the run (would
have) recovered — and the ring itself stays strictly bounded, so the
default-on recorder cannot grow a long run's memory.
"""

import glob
import json
import os

import pytest

import repro
from repro.core import ZSim
from repro.config import small_test_system
from repro.errors import DeadlockError, RunInterrupted
from repro.obs import FlightRecorder, load_capsule, render_report
from repro.obs.flight import CAPSULE_VERSION
from repro.resilience import FaultPlan, Supervisor
from repro.workloads import mt_workload

INSTRS = 20_000


def _build(backend, flight, num_cores=4):
    config = small_test_system(num_cores=num_cores)
    wl = mt_workload("blackscholes", scale=1 / 64,
                     num_threads=num_cores)
    return ZSim(config, threads=wl.make_threads(target_instrs=INSTRS),
                backend=backend, flight=flight)


# ---------------------------------------------------------------------
# The ring
# ---------------------------------------------------------------------


class TestRing:
    def test_ring_is_strictly_bounded(self):
        flight = FlightRecorder(capacity=32)
        for i in range(10_000):
            flight.record("tick", n=i)
        assert len(flight) == 32
        events = flight.events()
        # Oldest events fell off the far end; the tail survived intact.
        assert events[0]["n"] == 10_000 - 32
        assert events[-1]["n"] == 9_999
        assert all(e["kind"] == "tick" for e in events)

    def test_capacity_floor(self):
        assert FlightRecorder(capacity=1).capacity == 16

    def test_worker_state_tracks_last_seen(self):
        flight = FlightRecorder()
        flight.record("fork", worker=0)
        flight.record("hb_slack", worker=0)
        flight.record("fork", worker=1)
        assert flight.worker_state[0][1] == "hb_slack"
        assert flight.worker_state[1][1] == "fork"

    def test_run_with_small_ring_stays_bounded(self):
        flight = FlightRecorder(capacity=16)
        sim = _build("serial", flight)
        sim.run()
        assert len(flight) == 16

    def test_flight_false_disables_the_recorder(self):
        sim = _build("serial", False)
        assert sim.flight is None
        sim.run()  # guarded call sites pay one attribute load

    def test_default_recorder_is_in_memory_only(self):
        sim = _build("serial", None)
        assert isinstance(sim.flight, FlightRecorder)
        assert sim.flight.capsule_dir is None  # library use: no files


# ---------------------------------------------------------------------
# Capsules
# ---------------------------------------------------------------------


class TestCapsules:
    def test_capture_without_dir_stays_in_memory(self):
        flight = FlightRecorder()
        flight.record("interval", interval=1)
        assert flight.capture(kind="crash", message="boom") is None
        assert flight.capsules == []
        capsule = flight.last_capsule
        assert capsule["version"] == CAPSULE_VERSION
        assert capsule["reason"]["kind"] == "crash"
        assert any(e["kind"] == "interval" for e in capsule["events"])

    def test_capture_writes_a_loadable_capsule(self, tmp_path):
        flight = FlightRecorder(capsule_dir=str(tmp_path))
        flight.record("dispatch", worker=2, interval=3)
        path = flight.capture(kind="worker_death", message="w2 died",
                              worker=2, interval=3, phase="bound")
        assert path is not None and os.path.exists(path)
        assert flight.capsules == [path]
        capsule = load_capsule(path)
        assert capsule["reason"]["worker"] == 2
        assert capsule["workers"]["2"]["last_event"] == "dispatch"

    def test_load_capsule_rejects_schema_skew(self, tmp_path):
        path = tmp_path / "postmortem-old.json"
        path.write_text(json.dumps({"version": CAPSULE_VERSION + 1}))
        with pytest.raises(ValueError, match="schema"):
            load_capsule(str(path))

    def test_capsule_cap_stops_a_fault_storm(self, tmp_path):
        flight = FlightRecorder(capsule_dir=str(tmp_path),
                                max_capsules=2)
        for _ in range(5):
            flight.capture(kind="crash")
        assert len(flight.capsules) == 2
        assert flight.captures_skipped == 3
        assert len(glob.glob(str(tmp_path / "postmortem-*.json"))) == 2

    def test_render_report_names_the_failure(self, tmp_path):
        flight = FlightRecorder(capsule_dir=str(tmp_path))
        flight.record("fork", worker=0, interval=2)
        path = flight.capture(kind="worker_death", message="w0 died",
                              recovery="cores re-run inline",
                              worker=0, interval=2, phase="bound")
        text = render_report(load_capsule(path))
        assert "worker_death (worker 0, interval 2, bound phase)" in text
        assert "cores re-run inline" in text
        assert "fork" in text
        assert "worker 0" in text


# ---------------------------------------------------------------------
# Failure paths: every way a run can die leaves a capsule
# ---------------------------------------------------------------------


class TestFailurePathCapsules:
    def test_deadlock_leaves_a_capsule(self, tmp_path, tiny_config):
        from repro.dbt.instrumentation import InstrumentedStream
        from repro.isa.opcodes import Opcode
        from repro.isa.program import BBLExec, Instruction, Program
        from repro.virt import SimThread
        from repro.virt.syscalls import FutexWait

        program = Program("dead")
        block = program.add_block([Instruction(Opcode.SYSCALL)])

        def stuck(key):
            yield BBLExec(block, (), syscall=FutexWait(key))

        flight = FlightRecorder(capsule_dir=str(tmp_path))
        sim = ZSim(tiny_config, threads=[
            SimThread(InstrumentedStream(stuck("a")), name="spin-a"),
            SimThread(InstrumentedStream(stuck("b")), name="spin-b")],
            flight=flight)
        with pytest.raises(DeadlockError):
            sim.run()
        (path,) = flight.capsules
        capsule = load_capsule(path)
        assert capsule["reason"]["kind"] == "DeadlockError"
        assert "spin-a" in capsule["reason"]["message"]

    def test_signal_stop_leaves_a_capsule(self, tmp_path):
        flight = FlightRecorder(capsule_dir=str(tmp_path))
        sim = _build("serial", flight)
        sim.request_stop("SIGTERM")
        with pytest.raises(RunInterrupted):
            sim.run()
        (path,) = flight.capsules
        capsule = load_capsule(path)
        assert capsule["reason"]["kind"] == "stopped"
        assert "SIGTERM" in capsule["reason"]["message"]

    @pytest.mark.parametrize("backend,plan,interval", (
        # A thread worker raising mid-job surfaces as a WorkerFailure.
        ("parallel", "raise@2:bound", 2),
        # The process backend absorbs single worker deaths inline; only
        # repeated whole-pool death surfaces (ProcessPoolError).
        ("process", "sigkill@2:w0;sigkill@3:w0", 3),
    ))
    def test_supervised_fault_recovery_leaves_a_capsule(
            self, tmp_path, backend, plan, interval):
        flight = FlightRecorder(capsule_dir=str(tmp_path))
        sim = _build(backend, flight)
        if backend == "process":
            sim.backend.pool_size = 1
        sim.backend.fault_plan = FaultPlan.parse(plan)
        Supervisor(sim, max_retries=3, backoff_intervals=0)
        sim.run()  # recovered, not fatal — but the capsule remains
        recovered = [load_capsule(p) for p in flight.capsules]
        recovered = [c for c in recovered
                     if c["reason"].get("recovery")
                     and "serial backend" in c["reason"]["recovery"]]
        assert recovered, "recovery must leave a post-mortem"
        capsule = recovered[0]
        assert capsule["reason"]["interval"] == interval
        kinds = {e["kind"] for e in capsule["events"]}
        assert "fault_injected" in kinds
        assert any(e["kind"] == "recovery"
                   for e in flight.events())

    def test_process_worker_sigkill_leaves_a_named_capsule(
            self, tmp_path):
        flight = FlightRecorder(capsule_dir=str(tmp_path))
        sim = _build("process", flight)
        sim.backend.pool_size = 2
        sim.backend.fault_plan = FaultPlan.parse("sigkill@2:w0")
        sim.run()  # crash-tolerant: the run completes anyway
        assert flight.capsules
        capsule = load_capsule(flight.capsules[0])
        reason = capsule["reason"]
        assert reason["kind"] == "worker_death"
        assert reason["worker"] == 0
        assert reason["interval"] == 2
        assert "inline" in reason["recovery"]
        text = render_report(capsule)
        assert "worker 0" in text and "interval 2" in text

    def test_interval_events_are_recorded(self):
        flight = FlightRecorder()
        sim = _build("serial", flight)
        sim.run()
        intervals = [e for e in flight.events()
                     if e["kind"] == "interval"]
        assert intervals
        assert intervals[-1]["instrs"] > 0


# ---------------------------------------------------------------------
# Host-timing audit (satellite): wall-clock reads in the engine must be
# monotonic — time.time() is NTP-steppable and has no place in exec/
# resilience/obs/core timing.
# ---------------------------------------------------------------------


class TestHostTimingGuard:
    SUBSYSTEMS = ("exec", "resilience", "obs", "core")

    def test_no_wall_clock_reads_in_guarded_subsystems(self):
        root = os.path.dirname(repro.__file__)
        offenders = []
        for sub in self.SUBSYSTEMS:
            pattern = os.path.join(root, sub, "**", "*.py")
            for path in glob.glob(pattern, recursive=True):
                with open(path) as fh:
                    for lineno, line in enumerate(fh, 1):
                        if "time.time(" in line:
                            offenders.append("%s:%d" % (path, lineno))
        assert not offenders, (
            "time.time() found in guarded subsystems (use "
            "time.monotonic()/time.perf_counter()): %s" % offenders)
