"""The live run monitor (repro.obs.monitor): the atomically-rewritten
status file, the Prometheus text exposition, and the ``repro top``
terminal view."""

import glob
import json
import time
import urllib.request

from repro.core import ZSim
from repro.config import small_test_system
from repro.obs import RunMonitor, prometheus_text, render_top
from repro.obs.monitor import STATUS_VERSION
from repro.workloads import mt_workload

INSTRS = 20_000


def _build(num_cores=4):
    config = small_test_system(num_cores=num_cores)
    wl = mt_workload("blackscholes", scale=1 / 64,
                     num_threads=num_cores)
    return ZSim(config, threads=wl.make_threads(target_instrs=INSTRS))


class TestStatusFile:
    def test_run_publishes_and_finishes_the_status_file(self, tmp_path):
        path = str(tmp_path / "status.json")
        sim = _build()
        sim.monitor = RunMonitor(path=path, target_instrs=INSTRS,
                                 run_id=sim.flight.run_id)
        sim.run()
        with open(path) as fh:
            status = json.load(fh)
        assert status["version"] == STATUS_VERSION
        assert status["state"] == "done"
        assert status["progress"] == 1.0
        assert status["eta_s"] == 0.0
        assert status["backend"] == "serial"
        assert status["run_id"] == sim.flight.run_id
        assert status["interval"] > 0
        assert status["instrs"] > 0
        assert status["target_instrs"] == INSTRS
        # Atomic writes: no torn temp files survive the run.
        assert glob.glob(str(tmp_path / "*.tmp")) == []

    def test_failed_run_publishes_terminal_state(self, tmp_path):
        from repro.errors import RunInterrupted
        import pytest
        path = str(tmp_path / "status.json")
        sim = _build()
        sim.monitor = RunMonitor(path=path, target_instrs=INSTRS)
        sim.request_stop("unit test")
        with pytest.raises(RunInterrupted):
            sim.run()
        with open(path) as fh:
            status = json.load(fh)
        assert status["state"] == "stopped"

    def test_pathless_monitor_keeps_status_in_memory(self):
        sim = _build()
        sim.monitor = RunMonitor(target_instrs=INSTRS)
        sim.run()
        assert sim.monitor.status["state"] == "done"
        assert sim.monitor.status["progress"] == 1.0


class TestPrometheusText:
    STATUS = {
        "run_id": "abcd1234", "backend": "process", "state": "running",
        "interval": 7, "cycle": 70_000, "instrs": 12_345,
        "target_instrs": 100_000, "progress": 0.12,
        "intervals_per_s": 3.5, "instrs_per_s": 41_000.0,
        "eta_s": 2.1, "elapsed_s": 0.3, "spec_hit_rate": 0.93,
        "recoveries": 1, "demotions": 0,
        "workers": {"0": {"last_event": "hb_slack", "age_s": 0.2}},
    }

    def test_exposition_carries_the_gauges(self):
        text = prometheus_text(self.STATUS)
        assert 'repro_run_info{run_id="abcd1234",backend="process"' \
            in text
        assert "repro_state 0" in text
        assert "repro_progress 0.12" in text
        assert "repro_spec_hit_rate 0.93" in text
        assert 'repro_worker_age_seconds{worker="0"} 0.2' in text
        assert text.endswith("\n")

    def test_none_values_are_omitted(self):
        status = dict(self.STATUS, spec_hit_rate=None, eta_s=None)
        text = prometheus_text(status)
        assert "repro_spec_hit_rate" not in text
        assert "repro_eta_seconds" not in text

    def test_terminal_states_are_coded(self):
        for state, code in (("done", 1), ("stopped", 2), ("failed", 3)):
            text = prometheus_text(dict(self.STATUS, state=state))
            assert "repro_state %d" % code in text


class TestStatusServer:
    def test_ephemeral_port_serves_metrics_and_json(self):
        sim = _build()
        monitor = RunMonitor(port=0, target_instrs=INSTRS)
        sim.monitor = monitor
        assert monitor.port  # 0 resolved to a real ephemeral port
        try:
            monitor.update(sim, 1, 10_000)
            base = "http://127.0.0.1:%d" % monitor.port
            with urllib.request.urlopen(base + "/metrics") as resp:
                body = resp.read().decode()
            assert "repro_state 0" in body
            assert "repro_interval 1" in body
            with urllib.request.urlopen(base + "/") as resp:
                status = json.loads(resp.read().decode())
            assert status["interval"] == 1
        finally:
            monitor.close()
            sim.backend.shutdown()

    def test_close_is_idempotent(self):
        monitor = RunMonitor(port=0)
        monitor.close()
        monitor.close()


class TestRenderTop:
    STATUS = dict(TestPrometheusText.STATUS,
                  pid=4242, updated_monotonic=1000.0,
                  demotion_path="")

    def test_frame_shows_identity_progress_and_rates(self):
        text = render_top(self.STATUS, now=1000.5)
        assert "run abcd1234 (pid 4242)" in text
        assert "backend: process" in text
        assert " 12%" in text
        assert "interval 7" in text
        assert "speculation hit rate 93%" in text
        assert "recoveries 1" in text
        assert "STALE" not in text

    def test_stale_running_status_is_flagged(self):
        text = render_top(self.STATUS, now=1100.0)
        assert "STALE?" in text
        done = dict(self.STATUS, state="done")
        assert "STALE" not in render_top(done, now=1100.0)

    def test_demotion_path_and_workers_render(self):
        status = dict(self.STATUS, demotion_path="process->parallel",
                      demotions=1)
        text = render_top(status, now=1000.5)
        assert "(process->parallel)" in text
        assert "workers: 0:hb_slack 0.2s" in text


class TestCLITop:
    def test_top_once_exits_by_state(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "status.json"
        status = dict(TestRenderTop.STATUS, state="done",
                      updated_monotonic=time.monotonic())
        path.write_text(json.dumps(status))
        assert main(["top", str(path), "--once"]) == 0
        assert "run abcd1234" in capsys.readouterr().out
        path.write_text(json.dumps(dict(status, state="failed")))
        assert main(["top", str(path), "--once"]) == 1

    def test_top_missing_file_is_a_clean_error(self, tmp_path):
        import pytest
        from repro.cli import main
        with pytest.raises(SystemExit, match="status file"):
            main(["top", str(tmp_path / "nope.json"), "--once"])
