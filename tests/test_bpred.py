"""Tests for the two-level branch predictor."""

import random

from repro.config.system import BranchPredictorConfig
from repro.cpu.bpred import BranchPredictor


def predictor(**kwargs):
    return BranchPredictor(BranchPredictorConfig(**kwargs))


class TestLearning:
    def test_learns_always_taken(self):
        bp = predictor()
        for _ in range(50):
            bp.predict_and_update(0x400, True)
        before = bp.mispredictions
        for _ in range(100):
            bp.predict_and_update(0x400, True)
        assert bp.mispredictions == before

    def test_learns_always_not_taken(self):
        bp = predictor()
        for _ in range(50):
            bp.predict_and_update(0x400, False)
        before = bp.mispredictions
        for _ in range(100):
            bp.predict_and_update(0x400, False)
        assert bp.mispredictions == before

    def test_learns_alternating_via_history(self):
        """A strict T/N/T/N pattern is perfectly predictable with global
        history — the point of a 2-level predictor."""
        bp = predictor()
        outcome = True
        for _ in range(200):
            bp.predict_and_update(0x400, outcome)
            outcome = not outcome
        before = bp.mispredictions
        for _ in range(200):
            bp.predict_and_update(0x400, outcome)
            outcome = not outcome
        assert bp.mispredictions - before <= 2

    def test_random_branches_mispredict_often(self):
        bp = predictor()
        rng = random.Random(5)
        for _ in range(2000):
            bp.predict_and_update(0x400, rng.random() < 0.5)
        rate = bp.mispredictions / bp.predictions
        assert 0.3 < rate < 0.7

    def test_biased_branches_mostly_predicted(self):
        bp = predictor()
        rng = random.Random(5)
        for _ in range(2000):
            bp.predict_and_update(0x400, rng.random() < 0.95)
        rate = bp.mispredictions / bp.predictions
        assert rate < 0.25


class TestMechanics:
    def test_counts(self):
        bp = predictor()
        bp.predict_and_update(0x10, True)
        assert bp.predictions == 1

    def test_reset(self):
        bp = predictor()
        for _ in range(10):
            bp.predict_and_update(0x10, True)
        bp.reset()
        assert bp.predictions == 0
        assert bp.mispredictions == 0

    def test_table_size_must_be_power_of_two(self):
        import pytest
        with pytest.raises(ValueError):
            predictor(table_size=1000)

    def test_larger_predictor_not_worse_on_many_branches(self):
        """A bigger table suffers less aliasing across many branch PCs
        (what the reference machine exploits)."""
        small = predictor(history_bits=6, table_size=64)
        big = predictor(history_bits=14, table_size=16384)
        rng = random.Random(9)
        pcs = [0x400 + i * 8 for i in range(64)]
        biases = {pc: rng.random() for pc in pcs}
        for _ in range(150):
            for pc in pcs:
                taken = rng.random() < (0.9 if biases[pc] > 0.5 else 0.1)
                small.predict_and_update(pc, taken)
                big.predict_and_update(pc, taken)
        assert big.mispredictions <= small.mispredictions

    def test_penalty_from_config(self):
        bp = predictor(mispredict_penalty=17)
        assert bp.mispredict_penalty == 17
