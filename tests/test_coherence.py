"""Tests for MESI coherence across the hierarchy.

These drive the full hierarchy (the coherence controller can't be
meaningfully tested in isolation from inclusion and the directory).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import small_test_system
from repro.memory.coherence import MESI, check_single_writer, is_exclusive
from repro.memory.hierarchy import MemoryHierarchy

LINE = 64


def hierarchy(num_cores=4):
    return MemoryHierarchy(small_test_system(num_cores=num_cores))


class TestStateHelpers:
    def test_is_exclusive(self):
        assert is_exclusive(MESI.M) and is_exclusive(MESI.E)
        assert not is_exclusive(MESI.S) and not is_exclusive(MESI.I)

    def test_single_writer_legal(self):
        assert check_single_writer([MESI.M])
        assert check_single_writer([MESI.S, MESI.S, MESI.S])
        assert check_single_writer([])
        assert check_single_writer([MESI.I, MESI.E])

    def test_single_writer_violations(self):
        assert not check_single_writer([MESI.M, MESI.M])
        assert not check_single_writer([MESI.M, MESI.S])
        assert not check_single_writer([MESI.E, MESI.S])


class TestProtocol:
    def test_first_read_gets_exclusive(self):
        h = hierarchy()
        h.access(0, 0x1000, write=False)
        assert h.l1d[0].line_state(0x1000 >> 6) == MESI.E

    def test_write_makes_modified(self):
        h = hierarchy()
        h.access(0, 0x1000, write=True)
        assert h.l1d[0].line_state(0x1000 >> 6) == MESI.M

    def test_second_reader_downgrades_to_shared(self):
        h = hierarchy()
        h.access(0, 0x1000, write=False)
        h.access(1, 0x1000, write=False)
        line = 0x1000 >> 6
        assert h.l1d[0].line_state(line) == MESI.S
        assert h.l1d[1].line_state(line) == MESI.S

    def test_write_invalidates_other_copies(self):
        h = hierarchy()
        h.access(0, 0x1000, write=False)
        h.access(1, 0x1000, write=False)
        h.access(2, 0x1000, write=True)
        line = 0x1000 >> 6
        assert h.l1d[0].line_state(line) == MESI.I
        assert h.l1d[1].line_state(line) == MESI.I
        assert h.l1d[2].line_state(line) == MESI.M

    def test_read_after_write_flushes_dirty(self):
        h = hierarchy()
        h.access(0, 0x1000, write=True)
        h.access(1, 0x1000, write=False)
        line = 0x1000 >> 6
        assert h.l1d[0].line_state(line) == MESI.S
        assert h.l1d[1].line_state(line) == MESI.S
        # The dirty data was flushed to the common parent (an L3 bank);
        # the private L2s are downgraded to S.
        assert h.l2s[0].line_state(line) == MESI.S
        bank, _net = h.l2s[0].parent_select(line)
        assert bank.line_state(line) == MESI.M

    def test_silent_e_to_m_upgrade(self):
        """A write hit on an E line upgrades silently (no traffic)."""
        h = hierarchy()
        h.access(0, 0x1000, write=False)
        invs_before = h.l1d[0].upgrades
        result = h.access(0, 0x1000, write=True)
        assert h.l1d[0].line_state(0x1000 >> 6) == MESI.M
        assert h.l1d[0].upgrades == invs_before  # no upgrade request
        assert result.hit_level == "l1d"

    def test_upgrade_from_shared_counts(self):
        h = hierarchy()
        h.access(0, 0x1000, write=False)
        h.access(1, 0x1000, write=False)  # both now S
        h.access(0, 0x1000, write=True)   # S -> M needs an upgrade
        assert h.l1d[0].upgrades == 1
        assert h.l1d[1].line_state(0x1000 >> 6) == MESI.I

    def test_write_latency_includes_invalidation(self):
        h = hierarchy()
        h.access(0, 0x1000, write=False)
        h.access(1, 0x1000, write=False)
        miss = h.access(2, 0x2000, write=True)     # plain shared-level miss
        inv = h.access(2, 0x1000, write=True)      # must invalidate 2 L1s
        assert inv.invalidations >= 1

    def test_ifetch_uses_l1i(self):
        h = hierarchy()
        h.access(0, 0x400000, write=False, ifetch=True)
        assert h.l1i[0].line_state(0x400000 >> 6) != MESI.I
        assert h.l1d[0].line_state(0x400000 >> 6) == MESI.I


class TestWritebacks:
    def test_dirty_eviction_writes_back(self):
        h = hierarchy(num_cores=1)
        l1d = h.l1d[0]
        sets = l1d.array.num_sets
        ways = l1d.array.ways
        base = 0x100000
        # Fill one set beyond capacity with dirty lines.
        for i in range(ways + 1):
            addr = base + i * sets * LINE
            h.access(0, addr, write=True)
        assert l1d.evictions >= 1
        assert l1d.writebacks >= 1
        # The victim's dirty data landed in the L2.
        victim_line = base >> 6
        assert h.l2s[0].line_state(victim_line) == MESI.M

    def test_clean_eviction_no_writeback(self):
        h = hierarchy(num_cores=1)
        l1d = h.l1d[0]
        sets, ways = l1d.array.num_sets, l1d.array.ways
        for i in range(ways + 2):
            h.access(0, 0x100000 + i * sets * LINE, write=False)
        assert l1d.evictions >= 2
        assert l1d.writebacks == 0


class TestInclusion:
    def test_l3_eviction_invalidates_l1(self):
        """Inclusive L3: evicting a line kills every copy below."""
        h = hierarchy(num_cores=1)
        target = 0x100000
        target_line = target >> 6
        # parent_select is keyed by *line*, not address.
        select = h.l2s[0].parent_select
        l3, _net = select(target_line)
        h.access(0, target, write=False)
        bank_sets = l3.array.num_sets
        assert l3.line_state(target_line) != MESI.I
        # Force evictions in the L3 set holding target_line by touching
        # conflicting lines (same set index, same bank).
        candidates = []
        probe = target_line + bank_sets
        while len(candidates) < l3.array.ways + 4:
            if select(probe)[0] is l3 and \
                    probe % bank_sets == target_line % bank_sets:
                candidates.append(probe)
            probe += bank_sets
        for cand in candidates:
            h.access(0, cand << 6, write=False)
        assert l3.line_state(target_line) == MESI.I
        assert h.l1d[0].line_state(target_line) == MESI.I
        assert h.l2s[0].line_state(target_line) == MESI.I

    def test_inclusion_invariant_random(self):
        h = hierarchy()
        rng = random.Random(11)
        for _ in range(5000)  :
            h.access(rng.randrange(4), rng.randrange(1 << 17),
                     write=rng.random() < 0.4)
        assert h.check_inclusion() == []


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3),
                          st.integers(0, 255),
                          st.booleans()),
                min_size=10, max_size=300))
def test_coherence_invariants_random(ops):
    """After any access sequence: single-writer invariant, inclusion,
    and the directory agrees with L1 contents."""
    h = hierarchy()
    for core, line_idx, write in ops:
        h.access(core, line_idx * LINE, write=write)
    assert h.check_coherence() == []
    assert h.check_inclusion() == []
    # Directory consistency: every L1D-resident line is tracked by its L2.
    for core, l1d in enumerate(h.l1d):
        for line, _state in l1d.array.resident_lines():
            assert l1d in h.l2s[core].sharers_of(line)
