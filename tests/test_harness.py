"""Tests for the experiment harness (validation + performance drivers)."""

import pytest

from repro.config import small_test_system
from repro.harness import table1
from repro.harness.performance import (
    MODEL_SETS,
    interval_sensitivity,
    model_grid,
    native_mips,
    with_core_model,
)
from repro.harness.validation import (
    mt_validation,
    spec_validation,
    speedup_curve,
    stream_scalability,
    validate_workload,
)
from repro.workloads import mt_workload, spec_workload


@pytest.fixture(scope="module")
def cfg():
    return small_test_system(num_cores=4, core_model="ooo")


class TestTable1:
    def test_matrix_shape(self):
        matrix = table1.feature_matrix()
        assert len(matrix) == 7
        assert all(set(row) == set(table1.COLUMNS) for row in matrix)

    def test_zsim_row_claims(self):
        row = table1.zsim_row()
        assert row["Engine"] == "DBT"
        assert row["Parallelization"] == "Bound-weave"
        assert row["Multiprocess apps"] == "Yes"
        assert row["Full system"] == "No"

    def test_render(self):
        text = table1.render()
        assert "Bound-weave" in text
        assert text.count("\n") >= 9


class TestValidation:
    def test_validate_workload_row(self, cfg):
        row = validate_workload(cfg, spec_workload("namd", scale=1 / 64),
                                target_instrs=8_000)
        for key in ("ipc_zsim", "ipc_real", "perf_error", "tlb_mpki",
                    "l1d_mpki_real", "l1d_mpki_err", "l3_mpki_err",
                    "branch_mpki_err"):
            assert key in row
        assert row["ipc_zsim"] > 0 and row["ipc_real"] > 0

    def test_spec_validation_sorted(self, cfg):
        rows = spec_validation(cfg, names=("namd", "mcf", "povray"),
                               scale=1 / 64, target_instrs=6_000)
        errors = [abs(r["perf_error"]) for r in rows]
        assert errors == sorted(errors)

    def test_mt_validation(self, cfg):
        rows = mt_validation(cfg, names=("blackscholes",), scale=1 / 64,
                             target_instrs=12_000)
        assert rows[0]["name"].startswith("blackscholes")
        assert rows[0]["perf_real"] > 0

    def test_speedup_curve_monotone_for_scalable_workload(self):
        def factory(n):
            return small_test_system(num_cores=max(n, 1),
                                     core_model="simple")
        points = speedup_curve(factory, "blackscholes", (1, 2, 4),
                               scale=1 / 64, target_instrs=24_000)
        threads = [n for n, _s in points]
        speedups = [s for _n, s in points]
        assert threads == [1, 2, 4]
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[-1] > 1.5

    def test_stream_scalability_models(self):
        def factory(n):
            return small_test_system(num_cores=max(n, 1),
                                     core_model="simple")
        curves = stream_scalability(factory, (1, 2), scale=1 / 64,
                                    target_instrs=12_000,
                                    models=("none", "weave"))
        assert set(curves) == {"none", "weave", "real"}
        for points in curves.values():
            assert points[0] == (1, pytest.approx(1.0))


class TestPerformance:
    def test_native_mips_positive(self):
        wl = spec_workload("namd", scale=1 / 64)
        assert native_mips(wl, 5_000) > 0

    def test_model_grid_ordering(self, cfg):
        """IPC1-NC must be the fastest model set, OOO-C the slowest or
        close to it (Figure 7 / Table 4 shape)."""
        wl = mt_workload("blackscholes", scale=1 / 64)
        rows = model_grid(cfg, wl, target_instrs=20_000)
        assert set(label for label, _c, _m in MODEL_SETS) <= set(rows)
        assert rows["IPC1-NC"]["mips"] >= rows["OOO-C"]["mips"]
        for label, _c, _m in MODEL_SETS:
            assert rows[label]["slowdown"] > 1.0

    def test_with_core_model(self, cfg):
        simple = with_core_model(cfg, "simple")
        assert simple.core.model == "simple"
        assert cfg.core.model == "ooo"  # original untouched

    def test_interval_sensitivity_small_errors(self, cfg):
        wl = mt_workload("blackscholes", scale=1 / 64)
        out = interval_sensitivity(cfg, [wl], target_instrs=20_000,
                                   intervals=(1_000, 10_000))
        assert out[1_000]["avg_abs_error"] == 0.0  # baseline vs itself
        assert out[10_000]["avg_abs_error"] < 0.25


class TestPerformanceHarnessSmall:
    def test_table4_tiny(self, cfg):
        from repro.harness.performance import table4
        from repro.workloads import mt_workload
        workloads = [mt_workload("water", scale=1 / 64, num_threads=4),
                     mt_workload("stream", scale=1 / 64, num_threads=4)]
        table, summary = table4(cfg, workloads, target_instrs=8_000,
                                num_threads=4)
        assert set(table) == {"water", "stream"}
        for label in ("IPC1-NC", "OOO-C"):
            assert summary[label]["hmean_mips"] > 0
            assert summary[label]["hmean_slowdown"] > 1

    def test_host_scalability_tiny(self, cfg):
        from repro.harness.performance import host_scalability
        from repro.workloads import mt_workload
        wl = mt_workload("water", scale=1 / 64, num_threads=4)
        curve = host_scalability(cfg, wl, 12_000, num_threads=4,
                                 host_threads=(1, 4))
        assert dict(curve)[1] == pytest.approx(1.0)
        assert dict(curve)[4] >= 1.0

    def test_target_scalability_tiny(self):
        from repro.config import small_test_system
        from repro.harness.performance import target_scalability
        from repro.workloads import mt_workload

        def config_factory(n):
            return small_test_system(num_cores=n, core_model="simple")

        def workloads_factory(n):
            return [mt_workload("water", scale=1 / 64, num_threads=n)]

        curves = target_scalability(
            config_factory, (2, 4), workloads_factory,
            target_instrs=8_000,
            model_sets=(("IPC1-NC", "simple", "none"),))
        points = dict(curves["IPC1-NC"])
        assert set(points) == {2, 4}
        assert all(v > 0 for v in points.values())
