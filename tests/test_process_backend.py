"""The crash-tolerant process backend (repro.exec.process).

The headline properties:

* **Crash tolerance**: a worker process SIGKILLed mid-interval (or
  SIGSTOPped past the heartbeat budget) cannot corrupt or wedge the
  run — its cores re-run inline on the driver and the final stats tree
  is byte-identical to an uninterrupted serial run, with the recovery
  visible only under ``stats()["host"]``.
* **The degradation ladder**: systemic pool failure demotes the run
  process -> parallel -> serial under supervision, and the demoted run
  still matches the fault-free serial reference.
"""

import os
import signal

import pytest

from repro.core import ZSim
from repro.config import small_test_system
from repro.errors import ProcessPoolError, RunInterrupted, WallClockExceeded
from repro.exec import make_backend
from repro.exec.process import ProcessBackend
from repro.exec.serial import SerialBackend
from repro.resilience import (
    Checkpointer,
    FaultPlan,
    SigKillWorker,
    SigStopWorker,
    Supervisor,
    latest,
    read_checkpoint,
)
from repro.stats import assert_equivalent
from repro.workloads import mt_workload

INSTRS = 20_000


def _build(backend, num_cores=4):
    config = small_test_system(num_cores=num_cores)
    wl = mt_workload("blackscholes", scale=1 / 64,
                     num_threads=num_cores)
    sim = ZSim(config,
               threads=wl.make_threads(target_instrs=INSTRS),
               backend=backend)
    return sim, wl


def _stats_tree(result):
    tree = result.stats().to_dict()
    tree.pop("host", None)
    return tree


@pytest.fixture(scope="module")
def serial_baseline():
    sim, _ = _build("serial")
    return _stats_tree(sim.run())


# ---------------------------------------------------------------------
# Fault-plan grammar: real-process faults
# ---------------------------------------------------------------------


class TestProcessFaultGrammar:
    def test_parse_sigkill_and_sigstop(self):
        plan = FaultPlan.parse("sigkill@3:w0;sigstop@4")
        kill, stop = plan.faults
        assert isinstance(kill, SigKillWorker)
        assert (kill.interval, kill.worker) == (3, 0)
        assert kill.signum == signal.SIGKILL
        assert isinstance(stop, SigStopWorker)
        assert stop.worker is None
        assert stop.signum == signal.SIGSTOP

    def test_describe_roundtrips(self):
        for spec in ("sigkill@3:w0", "sigstop@4"):
            plan = FaultPlan.parse(spec)
            assert plan.faults[0].describe() == spec
            assert FaultPlan.parse(plan.faults[0].describe()).faults

    def test_process_faults_selected_by_interval_until_fired(self):
        plan = FaultPlan.parse("sigkill@3:w0;sigstop@4")
        kill, stop = plan.faults
        assert plan.process_faults(3) == [kill]
        assert plan.process_faults(4) == [stop]
        assert plan.process_faults(5) == []
        kill.fired = True
        assert plan.process_faults(3) == []

    def test_corrupt_seam_skips_process_faults(self):
        # corrupt() walks non-dispatch faults; process faults have no
        # apply() and must be excluded (weave=None would blow up).
        plan = FaultPlan.parse("sigstop@4")
        plan.corrupt(None, 4)
        assert not plan.faults[0].fired

    def test_victim_selection_is_seeded(self):
        picks_a = [SigStopWorker(1).pick_worker(8, FaultPlan(seed=9).rng)
                   for _ in range(5)]
        picks_b = [SigStopWorker(1).pick_worker(8, FaultPlan(seed=9).rng)
                   for _ in range(5)]
        assert picks_a == picks_b
        assert all(0 <= p < 8 for p in picks_a)


# ---------------------------------------------------------------------
# Crash tolerance: signals to live workers never change results
# ---------------------------------------------------------------------


class TestProcessCrashTolerance:
    def test_plain_run_matches_serial(self, serial_baseline):
        sim, _ = _build("process")
        sim.backend.pool_size = 2
        tree = _stats_tree(sim.run())
        assert_equivalent(tree, serial_baseline,
                          context="plain process run vs serial")
        counters = sim.backend.counters
        assert counters["workers_forked"] > 0
        assert counters["spec_commits"] + counters["inline_runs"] > 0

    def test_sigkill_mid_interval_matches_serial(self, serial_baseline):
        sim, _ = _build("process")
        sim.backend.pool_size = 2
        plan = FaultPlan.parse("sigkill@2:w0")
        sim.backend.fault_plan = plan
        result = sim.run()
        assert plan.remaining() == []
        assert_equivalent(_stats_tree(result), serial_baseline,
                          context="sigkill mid-interval vs serial")
        host = result.stats().to_dict()["host"]["exec"]
        assert host["worker_deaths"] >= 1
        assert host["respawns"] >= 1
        assert host["pool_failures"] == 0

    def test_sigstop_past_heartbeat_budget_matches_serial(
            self, serial_baseline):
        sim, _ = _build("process")
        sim.backend.pool_size = 2
        sim.backend.heartbeat_budget_s = 1.0
        plan = FaultPlan.parse("sigstop@3:w1")
        sim.backend.fault_plan = plan
        result = sim.run()
        assert plan.remaining() == []
        assert_equivalent(_stats_tree(result), serial_baseline,
                          context="sigstop past heartbeat vs serial")
        host = result.stats().to_dict()["host"]["exec"]
        assert host["heartbeat_kills"] >= 1
        assert host["worker_deaths"] >= 1

    def test_total_pool_death_raises_typed_error_unsupervised(self):
        sim, _ = _build("process")
        sim.backend.pool_size = 1
        # Both intervals lose the entire (1-worker) pool: systemic.
        sim.backend.fault_plan = FaultPlan.parse(
            "sigkill@2:w0;sigkill@3:w0")
        with pytest.raises(ProcessPoolError):
            sim.run()

    def test_shutdown_is_idempotent_and_restartable(self):
        sim, _ = _build("process")
        sim.backend.pool_size = 2
        sim.run(max_intervals=3)   # run() shuts the backend down
        sim.backend.shutdown()     # second shutdown is a no-op
        sim.run(max_intervals=3)   # pool re-forks per pass
        sim.backend.shutdown()


# ---------------------------------------------------------------------
# The degradation ladder (under supervision)
# ---------------------------------------------------------------------


class TestDegradationLadder:
    def test_process_to_parallel_to_serial(self, serial_baseline):
        sim, _ = _build("process")
        sim.backend.pool_size = 1
        sim.backend.heartbeat_budget_s = 2.0
        sim.backend.watchdog_budget = 0.25
        # Two whole-pool deaths -> ProcessPoolError -> demote to
        # parallel; a killed thread worker at interval 6 -> demote to
        # serial (permanent).
        plan = FaultPlan.parse("sigkill@2:w0;sigkill@3:w0;kill@6:bound")
        sim.backend.fault_plan = plan
        supervisor = Supervisor(sim, max_retries=1, backoff_intervals=0)
        result = sim.run()

        assert [(d["from"], d["to"]) for d in supervisor.demotions] == [
            ("process", "parallel"), ("parallel", "serial")]
        assert supervisor.fallback_permanent
        assert isinstance(sim.backend, SerialBackend)
        assert sim.host_model.backend_name == "serial"
        # Degraded, not wrong.
        assert_equivalent(_stats_tree(result), serial_baseline,
                          context="fully demoted run vs serial")
        res = result.stats().to_dict()["host"]["resilience"]
        assert res["demotions"] == 2
        assert res["demotion_path"] == "process->parallel->serial"
        assert res["recoveries"] == 2

    def test_demotion_transfers_watchdog_and_fault_plan(self):
        sim, _ = _build("process")
        sim.backend.pool_size = 1
        plan = FaultPlan.parse("sigkill@2:w0;sigkill@3:w0")
        sim.backend.fault_plan = plan
        sim.backend.watchdog_budget = 0.25
        Supervisor(sim, max_retries=1, backoff_intervals=0)
        sim.run(max_intervals=5)
        assert sim.backend.name == "parallel"
        assert sim.backend.fault_plan is plan
        assert sim.backend.watchdog_budget == 0.25


# ---------------------------------------------------------------------
# Recovery backoff: decorrelated jitter
# ---------------------------------------------------------------------


class TestBackoffJitter:
    def _supervisor(self, seed, base=2):
        sim, _ = _build("serial")
        return Supervisor(sim, max_retries=10, backoff_intervals=base,
                          seed=seed)

    def test_draws_stay_in_the_jitter_window(self):
        sup = self._supervisor(seed=123, base=2)
        prev = 2
        for _ in range(50):
            draw = sup._next_backoff()
            assert 2 <= draw <= 16  # [base, 8 * base]
            assert draw <= max(2, 3 * prev)
            prev = draw

    def test_schedule_is_reproducible_per_seed(self):
        a = [self._supervisor(seed=7)._next_backoff() for _ in range(1)]
        sup_a = self._supervisor(seed=7)
        sup_b = self._supervisor(seed=7)
        a = [sup_a._next_backoff() for _ in range(20)]
        b = [sup_b._next_backoff() for _ in range(20)]
        assert a == b
        assert len(set(a)) > 1  # actually jittered, not constant

    def test_zero_base_disables_backoff(self):
        sup = self._supervisor(seed=1, base=0)
        assert sup._next_backoff() == 0

    def test_recovery_surfaces_attempt_and_backoff(self):
        sim, _ = _build("parallel")
        sim.backend.watchdog_budget = 0.25
        sim.backend.fault_plan = FaultPlan.parse("kill@2")
        supervisor = Supervisor(sim, max_retries=5, backoff_intervals=2)
        result = sim.run()
        entry = supervisor.history[0]
        assert entry["attempt"] == 1
        assert 2 <= entry["backoff_intervals"] <= 16
        summary = result.stats().to_dict()["host"]["resilience"]
        assert summary["last_backoff_intervals"] == \
            entry["backoff_intervals"]
        assert summary["total_backoff_intervals"] >= \
            entry["backoff_intervals"]


# ---------------------------------------------------------------------
# Graceful interruption (SIGTERM/SIGINT -> the wall-budget exit path)
# ---------------------------------------------------------------------


class TestGracefulStop:
    def test_request_stop_checkpoints_and_raises_typed(self, tmp_path,
                                                       serial_baseline):
        sim, wl = _build("serial")
        sim.checkpointer = Checkpointer(str(tmp_path), every=1)
        sim.request_stop("unit test")
        with pytest.raises(RunInterrupted) as excinfo:
            sim.run()
        err = excinfo.value
        assert isinstance(err, WallClockExceeded)  # same exit path
        assert err.reason == "unit test"
        assert err.checkpoint_path is not None
        assert os.path.exists(err.checkpoint_path)
        # The interrupted run is resumable to the same stats tree.
        capsule = read_checkpoint(latest(str(tmp_path)))
        resumed = ZSim.resume(capsule,
                              wl.make_threads(target_instrs=INSTRS))
        assert_equivalent(_stats_tree(resumed.run()), serial_baseline,
                          context="resume after graceful stop")

    def test_sigterm_handler_requests_stop(self):
        from repro.cli import _GracefulStop
        sim, _ = _build("serial")
        with _GracefulStop(sim):
            os.kill(os.getpid(), signal.SIGTERM)
            with pytest.raises(RunInterrupted, match="SIGTERM"):
                sim.run()

    def test_handlers_are_restored_on_exit(self):
        from repro.cli import _GracefulStop
        sim, _ = _build("serial")
        before = signal.getsignal(signal.SIGTERM)
        with _GracefulStop(sim):
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before


# ---------------------------------------------------------------------
# Observability and configuration plumbing
# ---------------------------------------------------------------------


class TestProcessObservability:
    def test_worker_idle_histogram_and_tracer_lanes(self):
        from repro.obs import Telemetry
        from repro.obs.tracer import TID_WORKER
        telemetry = Telemetry(trace=True, metrics=True)
        config = small_test_system(num_cores=4)
        wl = mt_workload("blackscholes", scale=1 / 64, num_threads=4)
        sim = ZSim(config,
                   threads=wl.make_threads(target_instrs=INSTRS),
                   backend="process", telemetry=telemetry)
        sim.backend.pool_size = 2
        sim.run()
        hist = telemetry.metrics.histogram("exec.worker_idle_us")
        assert hist.count > 0
        names = telemetry.tracer._track_names
        assert names.get(TID_WORKER) == "process worker0"
        assert names.get(TID_WORKER + 1) == "process worker1"

    def test_host_stats_node_present_only_when_counters_exist(self):
        sim, _ = _build("serial")
        tree = sim.run().stats().to_dict()
        assert "exec" not in tree["host"]

    def test_config_knobs_reach_the_backend(self):
        import dataclasses
        config = small_test_system(num_cores=4)
        config = dataclasses.replace(
            config,
            boundweave=dataclasses.replace(config.boundweave,
                                           backend="process",
                                           process_workers=3,
                                           heartbeat_budget_s=5.0))
        sim = ZSim(config.validate())
        assert isinstance(sim.backend, ProcessBackend)
        assert sim.backend._resolved_pool_size() == 3
        assert sim.backend.heartbeat_budget_s == 5.0
        sim.backend.shutdown()

    def test_config_validation_rejects_bad_knobs(self):
        import dataclasses
        config = small_test_system(num_cores=4)
        bad = dataclasses.replace(
            config,
            boundweave=dataclasses.replace(config.boundweave,
                                           process_workers=-1))
        with pytest.raises(ValueError, match="process_workers"):
            bad.validate()
        bad = dataclasses.replace(
            config,
            boundweave=dataclasses.replace(config.boundweave,
                                           heartbeat_budget_s=0.0))
        with pytest.raises(ValueError, match="heartbeat"):
            bad.validate()

    def test_cli_flags_exist(self):
        from repro.cli import build_parser
        parser = build_parser()
        args = parser.parse_args(
            ["run", "--backend", "process", "--pool-size", "2",
             "--heartbeat-budget", "3.5"])
        assert args.backend == "process"
        assert args.pool_size == 2
        assert args.heartbeat_budget == 3.5

    def test_make_backend_registry(self):
        backend = make_backend("process", host_threads=2)
        assert isinstance(backend, ProcessBackend)
        assert backend.name == "process"
