"""End-to-end tests of the ZSim simulator."""

import dataclasses

import pytest

from repro.core import InterferenceProfiler, ZSim
from repro.virt.process import SimThread
from repro.workloads.base import KernelSpec, Workload


def workload(threads=4, **spec_kwargs):
    defaults = dict(name="wl", footprint_kb=64, mem_ratio=0.3,
                    pattern="random", shared_fraction=0.2, shared_kb=64,
                    barrier_iters=100, seed=7)
    defaults.update(spec_kwargs)
    return Workload(KernelSpec(**defaults), num_threads=threads)


_RUN_KWARGS = ("max_instrs", "max_cycles", "max_intervals")


def run(cfg, wl, instrs=40_000, threads=None, **kwargs):
    run_kwargs = {k: kwargs.pop(k) for k in _RUN_KWARGS if k in kwargs}
    sim = ZSim(cfg, threads=wl.make_threads(target_instrs=instrs,
                                            num_threads=threads),
               **kwargs)
    return sim.run(**run_kwargs), sim


class TestBasicRuns:
    def test_runs_to_completion(self, tiny_config):
        res, sim = run(tiny_config, workload())
        assert res.instrs >= 40_000 * 0.9
        assert res.cycles > 0
        assert sim.scheduler.all_done

    def test_deterministic(self, tiny_config):
        res1, _ = run(tiny_config, workload())
        res2, _ = run(tiny_config, workload())
        assert res1.cycles == res2.cycles
        assert res1.instrs == res2.instrs

    def test_seed_changes_interleaving(self, tiny_config):
        res1, _ = run(tiny_config, workload())
        cfg2 = dataclasses.replace(
            tiny_config, boundweave=dataclasses.replace(
                tiny_config.boundweave, seed=999))
        res2, _ = run(cfg2, workload())
        # Different wake-order shuffles give (slightly) different cycles.
        assert res1.instrs == res2.instrs
        assert res1.cycles != res2.cycles

    def test_contention_never_faster(self, tiny_config):
        nc, _ = run(tiny_config, workload(), contention_model="none")
        wc, _ = run(tiny_config, workload(), contention_model="weave")
        assert wc.cycles >= nc.cycles

    def test_md1_adds_memory_latency(self, tiny_config):
        nc, _ = run(tiny_config, workload(footprint_kb=512,
                                          hot_fraction=0.0),
                    contention_model="none")
        md1, _ = run(tiny_config, workload(footprint_kb=512,
                                           hot_fraction=0.0),
                     contention_model="md1")
        assert md1.cycles > nc.cycles

    def test_dramsim_contention_model(self, tiny_config):
        res, sim = run(tiny_config, workload(), contention_model="dramsim")
        assert res.cycles > 0
        names = [w.name for w in sim.hierarchy.mainmem.ctrl_weaves]
        assert all(n.startswith("dramsim") for n in names)

    def test_invalid_contention_model(self, tiny_config):
        with pytest.raises(ValueError):
            ZSim(tiny_config, contention_model="magic")

    def test_threads_must_be_simthreads(self, tiny_config):
        sim = ZSim(tiny_config)
        with pytest.raises(TypeError):
            sim.add_thread(iter(()))


class TestLimits:
    def test_max_instrs(self, tiny_config):
        res, _ = run(tiny_config, workload(), instrs=10 ** 9,
                     max_instrs=5_000)
        assert 5_000 <= res.instrs < 40_000

    def test_max_intervals(self, tiny_config):
        res, _ = run(tiny_config, workload(), max_intervals=3)
        assert res.intervals == 3

    def test_max_cycles(self, tiny_config):
        res, _ = run(tiny_config, workload(), instrs=10 ** 9,
                     max_cycles=20_000)
        assert res.cycles >= 20_000
        assert res.instrs < 10 ** 8


class TestScheduling:
    def test_more_threads_than_cores(self, tiny_config):
        """The JVM scenario: 8 threads on 4 cores, round-robin."""
        res, sim = run(tiny_config, workload(threads=8), threads=8)
        assert sim.scheduler.all_done
        worked = [c for c in sim.cores if c.instrs > 0]
        assert len(worked) == 4
        assert sim.scheduler.context_switches > 8

    def test_single_thread_on_many_cores(self, tiny_config):
        res, sim = run(tiny_config, workload(threads=1,
                                             barrier_iters=0), threads=1)
        active = [c for c in sim.cores if c.instrs > 0]
        assert len(active) == 1

    def test_lock_workload_completes(self, tiny_config):
        res, sim = run(tiny_config,
                       workload(lock_iters=20, barrier_iters=0))
        assert sim.scheduler.all_done
        assert sim.scheduler.syscalls_handled > 0

    def test_sleepers_advance_time(self, tiny_config):
        """All threads asleep: the engine jumps to the wake cycle
        instead of spinning or deadlocking."""
        from repro.isa.opcodes import Opcode
        from repro.isa.program import BBLExec, Instruction, Program
        from repro.virt.syscalls import Sleep
        from repro.dbt.instrumentation import InstrumentedStream

        program = Program("sleepy")
        sblock = program.add_block([Instruction(Opcode.SYSCALL)])

        def stream():
            yield BBLExec(sblock, syscall=Sleep(500_000))

        sim = ZSim(tiny_config,
                   threads=[SimThread(InstrumentedStream(stream()))])
        res = sim.run()
        assert res.cycles >= 500_000
        assert res.intervals < 100  # skipped ahead, didn't spin


class TestResults:
    def test_stats_tree_complete(self, tiny_config):
        res, _ = run(tiny_config, workload())
        tree = res.stats().to_dict()
        assert "core0" in tree and "mem" in tree
        assert tree["instrs"] == res.instrs
        assert tree["core0"]["instrs"] > 0

    def test_mips_positive(self, tiny_config):
        res, _ = run(tiny_config, workload())
        assert res.mips > 0

    def test_mpki_levels(self, tiny_config):
        res, _ = run(tiny_config, workload())
        for level in ("l1i", "l1d", "l2", "l3"):
            assert res.core_mpki(level) >= 0
        # Miss counts shrink up the hierarchy for this workload.
        assert res.core_mpki("l3") <= res.core_mpki("l1d") + 1e-9

    def test_invariants_hold_after_run(self, tiny_config):
        _res, sim = run(tiny_config, workload())
        assert sim.hierarchy.check_coherence() == []
        assert sim.hierarchy.check_inclusion() == []


class TestProfilerIntegration:
    def test_interference_grows_with_window(self, tiny_config):
        prof = InterferenceProfiler((1000, 10_000, 100_000))
        res, _ = run(tiny_config, workload(shared_fraction=0.4),
                     profiler=prof)
        f = prof.fractions()
        assert f[1000] <= f[10_000] <= f[100_000]
        assert prof.total_accesses > 0


class TestShuffleAblation:
    def test_shuffle_off_is_deterministic_too(self, tiny_config):
        cfg = dataclasses.replace(
            tiny_config, boundweave=dataclasses.replace(
                tiny_config.boundweave, shuffle_wake_order=False))
        res1, _ = run(cfg, workload())
        res2, _ = run(cfg, workload())
        assert res1.cycles == res2.cycles


class TestDeadlockDetection:
    def test_all_blocked_raises(self, tiny_config):
        """Threads waiting on futexes nobody will wake: the engine
        reports a deadlock instead of spinning forever."""
        from repro.dbt.instrumentation import InstrumentedStream
        from repro.isa.opcodes import Opcode
        from repro.isa.program import BBLExec, Instruction, Program
        from repro.virt.syscalls import FutexWait

        program = Program("dead")
        sys_block = program.add_block([Instruction(Opcode.SYSCALL)])

        def stuck(key):
            yield BBLExec(sys_block, (), syscall=FutexWait(key))

        sim = ZSim(tiny_config, threads=[
            SimThread(InstrumentedStream(stuck("a")), name="a"),
            SimThread(InstrumentedStream(stuck("b")), name="b")])
        with pytest.raises(RuntimeError, match="Deadlock"):
            sim.run()

    def test_deadlock_message_names_threads_readably(self, tiny_config):
        """Regression: the deadlock error must list thread *names*
        (joined, human-readable), not SimThread reprs."""
        from repro.dbt.instrumentation import InstrumentedStream
        from repro.isa.opcodes import Opcode
        from repro.isa.program import BBLExec, Instruction, Program
        from repro.virt.syscalls import FutexWait

        program = Program("dead")
        sys_block = program.add_block([Instruction(Opcode.SYSCALL)])

        def stuck(key):
            yield BBLExec(sys_block, (), syscall=FutexWait(key))

        sim = ZSim(tiny_config, threads=[
            SimThread(InstrumentedStream(stuck("x")), name="worker-a"),
            SimThread(InstrumentedStream(stuck("y")), name="worker-b")])
        with pytest.raises(RuntimeError) as excinfo:
            sim.run()
        message = str(excinfo.value)
        assert "worker-a, worker-b" in message
        assert "SimThread" not in message
        assert "[" not in message  # no list repr leaking through
