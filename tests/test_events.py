"""Tests for weave events, the event pool, and domains."""

from repro.core.domains import CoreWeave, Domain, assign_domains
from repro.core.events import EventPool
from repro.memory.weave import CacheBankWeave


class TestWeaveEvent:
    def test_link_gap_from_lower_bounds(self):
        pool = EventPool()
        parent = pool.alloc(None, "REQ", 0, min_cycle=100, service=10,
                            core_id=0)
        child = pool.alloc(None, "RESP", 0, min_cycle=130, service=0,
                           core_id=0)
        parent.link(child)
        (linked, gap), = parent.children
        assert linked is child
        assert gap == 20  # 130 - 100 - 10
        assert child.parents_left == 1

    def test_negative_gap_clamped(self):
        pool = EventPool()
        parent = pool.alloc(None, "REQ", 0, 100, 50, 0)
        child = pool.alloc(None, "X", 0, 120, 0, 0)  # 120 < 100+50
        parent.link(child)
        assert parent.children[0][1] == 0

    def test_multiple_parents_counted(self):
        pool = EventPool()
        child = pool.alloc(None, "X", 0, 10, 0, 0)
        for _ in range(3):
            pool.alloc(None, "P", 0, 0, 0, 0).link(child)
        assert child.parents_left == 3


class TestEventPool:
    def test_recycles_lifo(self):
        pool = EventPool()
        event = pool.alloc(None, "A", 0, 0, 0, 0)
        pool.free_all([event])
        again = pool.alloc(None, "B", 1, 5, 2, 1)
        assert again is event  # recycled object
        assert again.kind == "B" and again.min_cycle == 5
        assert again.children == []
        assert again.done is None

    def test_alloc_counts(self):
        pool = EventPool()
        events = [pool.alloc(None, "A", 0, 0, 0, 0) for _ in range(5)]
        assert pool.allocated == 5
        pool.free_all(events)
        pool.alloc(None, "B", 0, 0, 0, 0)
        assert pool.recycled == 1
        assert pool.allocated == 5


class TestDomain:
    def test_priority_order(self):
        domain = Domain(0)
        domain.push(30, "c")
        domain.push(10, "a")
        domain.push(20, "b")
        assert [domain.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_tiebreak(self):
        domain = Domain(0)
        domain.push(10, "first")
        domain.push(10, "second")
        assert domain.pop()[1] == "first"

    def test_current_cycle_tracks_pops(self):
        domain = Domain(0)
        domain.push(50, "x")
        domain.pop()
        assert domain.current_cycle == 50

    def test_head_cycle_empty(self):
        assert Domain(0).head_cycle() is None


class TestAssignDomains:
    def components(self, tiles):
        comps = []
        for tile in range(tiles):
            comps.append(CoreWeave("core%d" % tile, tile, tile=tile))
            comps.append(CacheBankWeave("l3b%d" % tile, 10, tile=tile))
        return comps

    def test_one_domain_per_tile_default(self):
        comps = self.components(4)
        domains = assign_domains(comps, num_tiles=4, num_domains=0)
        assert len(domains) == 4
        for comp in comps:
            assert comp.domain == comp.tile

    def test_vertical_slices(self):
        """Components of one tile land in one domain together."""
        comps = self.components(8)
        assign_domains(comps, num_tiles=8, num_domains=4)
        by_tile = {}
        for comp in comps:
            by_tile.setdefault(comp.tile, set()).add(comp.domain)
        assert all(len(doms) == 1 for doms in by_tile.values())

    def test_domain_count_capped_by_tiles(self):
        comps = self.components(2)
        domains = assign_domains(comps, num_tiles=2, num_domains=16)
        assert len(domains) == 2

    def test_single_tile(self):
        comps = self.components(1)
        domains = assign_domains(comps, num_tiles=1, num_domains=0)
        assert len(domains) == 1
        assert all(c.domain == 0 for c in comps)
