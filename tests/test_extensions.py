"""Tests for the extension features: prefetcher, config loader, ASCII
plots, periodic stats, automatic interval selection."""

import dataclasses
import json

import pytest

from repro.config import small_test_system, tiled_chip, westmere
from repro.config.loader import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.core import ZSim
from repro.harness.autointerval import (
    configured_with_interval,
    select_interval,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.prefetcher import StridePrefetcher
from repro.stats.ascii_plot import line_plot, scatter_plot
from repro.workloads import spec_workload
from repro.workloads.base import KernelSpec, Workload


class TestStridePrefetcher:
    def test_needs_training(self):
        pf = StridePrefetcher(degree=2)
        assert pf.observe(100) == ()      # first touch: allocate
        assert pf.observe(101) == ()      # stride seen once
        assert pf.observe(102) == (103, 104)  # confident

    def test_detects_negative_stride(self):
        pf = StridePrefetcher(degree=1)
        pf.observe(100)
        pf.observe(98)
        assert pf.observe(96) == (94,)

    def test_stride_change_retrains(self):
        pf = StridePrefetcher(degree=1)
        pf.observe(0)
        pf.observe(1)
        pf.observe(2)
        assert pf.observe(40) == ()       # stride broke (38 != 1)
        assert pf.observe(50) == ()       # new stride (10) seen once
        assert pf.observe(60) == (70,)    # retrained

    def test_pages_tracked_independently(self):
        pf = StridePrefetcher(degree=1)
        a, b = 0, 1 << StridePrefetcher.PAGE_SHIFT
        pf.observe(a)
        pf.observe(b + 5)
        pf.observe(a + 1)
        pf.observe(b + 10)
        assert pf.observe(a + 2) == (a + 3,)
        assert pf.observe(b + 15) == (b + 20,)

    def test_table_capacity(self):
        pf = StridePrefetcher()
        for page in range(2 * StridePrefetcher.TABLE_SIZE):
            pf.observe(page << StridePrefetcher.PAGE_SHIFT)
        assert len(pf._pages) == StridePrefetcher.TABLE_SIZE

    def test_same_line_repeats_ignored(self):
        pf = StridePrefetcher()
        pf.observe(7)
        assert pf.observe(7) == ()
        assert pf.observe(7) == ()


class TestPrefetcherIntegration:
    def config(self, degree):
        cfg = small_test_system(num_cores=1)
        return dataclasses.replace(
            cfg, l2=dataclasses.replace(cfg.l2, prefetch_degree=degree))

    def test_streaming_hits_after_prefetch(self):
        h = MemoryHierarchy(self.config(2))
        base = 0x100000
        for i in range(20):
            h.access(0, base + i * 64, False)
        # After training, demand accesses hit in L2.
        assert h.l2s[0].prefetch_fills > 0
        late = h.access(0, base + 20 * 64, False)
        assert "l2" not in late.missed_levels

    def test_prefetch_traffic_recorded_as_side_events(self):
        h = MemoryHierarchy(self.config(2))
        base = 0x200000
        wbacks = 0
        for i in range(20):
            result = h.access(0, base + i * 64, False)
            wbacks += len(result.wbacks)
        assert wbacks > 0

    def test_prefetch_speeds_up_streaming_workload(self):
        def run(degree):
            cfg = westmere(num_cores=1, core_model="ooo")
            cfg = dataclasses.replace(cfg, l2=dataclasses.replace(
                cfg.l2, prefetch_degree=degree))
            wl = spec_workload("libquantum", scale=1 / 32)
            sim = ZSim(cfg, wl.make_threads(target_instrs=20_000))
            return sim.run()
        off = run(0)
        on = run(2)
        assert on.ipc > 1.3 * off.ipc
        assert on.core_mpki("l2") < 0.5 * off.core_mpki("l2")

    def test_inclusion_holds_with_prefetch(self):
        h = MemoryHierarchy(self.config(4))
        import random
        rng = random.Random(4)
        for i in range(3000):
            h.access(0, (0x100000 + i * 64) if i % 2 else
                     rng.randrange(1 << 18), rng.random() < 0.3)
        assert h.check_inclusion() == []
        assert h.check_coherence() == []


class TestConfigLoader:
    def test_round_trip(self):
        cfg = westmere(num_cores=6)
        data = config_to_dict(cfg)
        rebuilt = config_from_dict(data)
        assert rebuilt == cfg

    def test_round_trip_tiled(self):
        cfg = tiled_chip(num_tiles=4)
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="Unknown config key"):
            config_from_dict({"num_tilez": 4})

    def test_nested_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="l1d"):
            config_from_dict({"l1d": {"sizekb": 32}})

    def test_base_overlay(self):
        base = westmere(num_cores=6)
        cfg = config_from_dict({"cores_per_tile": 2,
                                "l1d": {"size_kb": 64}}, base=base)
        assert cfg.num_cores == 2
        assert cfg.l1d.size_kb == 64
        assert cfg.l1d.ways == base.l1d.ways  # merged, not replaced
        assert cfg.l3.size_kb == base.l3.size_kb

    def test_file_round_trip(self, tmp_path):
        cfg = westmere(num_cores=3)
        path = tmp_path / "chip.json"
        save_config(cfg, path)
        loaded = load_config(path)
        assert loaded == cfg
        # And the file is honest JSON.
        assert json.loads(path.read_text())["cores_per_tile"] == 3

    def test_hetero_cores_from_json(self):
        data = config_to_dict(small_test_system(num_cores=4))
        data["hetero_cores"] = {"0": {"model": "ooo"}}
        cfg = config_from_dict(data)
        assert cfg.hetero_cores[0].model == "ooo"

    def test_invalid_config_still_validated(self):
        data = config_to_dict(small_test_system())
        data["cores_per_tile"] = 0
        with pytest.raises(ValueError):
            config_from_dict(data)


class TestAsciiPlot:
    def test_renders_series(self):
        text = line_plot({"a": [(0, 0.0), (1, 1.0)],
                          "b": [(0, 1.0), (1, 0.0)]},
                         width=20, height=5, title="T")
        assert text.startswith("T")
        assert "o" in text and "x" in text
        assert "a" in text and "b" in text

    def test_log_scale(self):
        text = line_plot({"s": [(1, 1e-5), (2, 1e-3), (3, 1e-1)]},
                         logy=True, width=20, height=5)
        assert "0.1" in text
        assert "1e-05" in text

    def test_empty(self):
        assert "empty" in line_plot({})

    def test_scatter(self):
        text = scatter_plot([(0, 1), (5, 3)], width=10, height=4)
        grid = "\n".join(line for line in text.splitlines()
                         if "|" in line)
        assert grid.count("o") == 2

    def test_constant_series_no_crash(self):
        text = line_plot({"c": [(0, 2.0), (1, 2.0)]}, width=10, height=4)
        assert "o" in text


class TestPeriodicStats:
    def test_samples_collected(self, tiny_config):
        wl = Workload(KernelSpec(name="ps", barrier_iters=0, seed=1), 2)
        sim = ZSim(tiny_config,
                   wl.make_threads(target_instrs=30_000, num_threads=2),
                   stats_period_intervals=5)
        res = sim.run()
        assert len(res.stat_samples) >= 2
        cycles = [c for c, _i in res.stat_samples]
        instrs = [i for _c, i in res.stat_samples]
        assert cycles == sorted(cycles)
        assert instrs == sorted(instrs)

    def test_disabled_by_default(self, tiny_config):
        wl = Workload(KernelSpec(name="ps2", barrier_iters=0, seed=1), 1)
        sim = ZSim(tiny_config,
                   wl.make_threads(target_instrs=5_000, num_threads=1))
        res = sim.run()
        assert res.stat_samples == []


class TestAutoInterval:
    def test_low_sharing_allows_long_intervals(self):
        cfg = small_test_system(num_cores=4)
        wl = Workload(KernelSpec(name="ai1", shared_fraction=0.0,
                                 barrier_iters=0, seed=2), 4)

        def make():
            return wl.make_threads(target_instrs=20_000, num_threads=4)
        interval, fractions = select_interval(
            cfg, make, candidates=(1_000, 10_000), probe_instrs=20_000,
            threshold=0.01)
        assert interval == 10_000
        assert fractions[1_000] <= fractions[10_000] + 1e-12

    def test_heavy_sharing_forces_short_intervals(self):
        cfg = small_test_system(num_cores=4)
        wl = Workload(KernelSpec(name="ai2", shared_fraction=0.8,
                                 shared_kb=16, barrier_iters=0, seed=2),
                      4)

        def make():
            return wl.make_threads(target_instrs=20_000, num_threads=4)
        interval, fractions = select_interval(
            cfg, make, candidates=(1_000, 100_000),
            probe_instrs=20_000)
        assert fractions[100_000] > fractions[1_000]
        assert interval == 1_000

    def test_configured_with_interval(self):
        cfg = small_test_system()
        out = configured_with_interval(cfg, 5_000)
        assert out.boundweave.interval_cycles == 5_000
        assert cfg.boundweave.interval_cycles == 1_000
