"""The state-integrity sentinel (repro.resilience.integrity).

Headline properties:

* The fingerprint chain is a pure function of simulated state: every
  backend produces the same chain, and the chain survives checkpoint
  and resume.
* Silent corruption — state damage that raises nothing — is detected
  by the online auditor within one audit stride, rolled back to the
  last fingerprint-verified barrier, and replayed serially to a stats
  tree byte-identical to a fault-free serial run.
* ``repro verify`` certifies a clean checkpoint chain and flags a
  tampered capsule, and ``--resume`` refuses one outright.
"""

import json
import pickle
import zlib

import pytest

from repro.cli import main as cli_main
from repro.config import (
    BoundWeaveConfig,
    CacheConfig,
    CoreConfig,
    SystemConfig,
)
from repro.config.loader import config_from_dict
from repro.core import ZSim
from repro.errors import ConfigError, ExecutionFault, IntegrityError
from repro.resilience import (
    Checkpointer,
    FaultPlan,
    IntegritySentinel,
    Supervisor,
    fingerprint_components,
    read_checkpoint,
    verify_state,
    write_checkpoint,
)
from repro.stats import assert_equivalent
from repro.workloads import mt_workload

WATCHDOG_S = 0.25


def _config(backend, audit_every=1):
    """16 cores over 4 tiles so the weave runs multiple domains and the
    parallel paths are actually parallel."""
    cfg = SystemConfig(
        name="integrity-16c",
        num_tiles=4,
        cores_per_tile=4,
        core=CoreConfig(model="simple"),
        l1i=CacheConfig(name="l1i", size_kb=4, ways=2, latency=3),
        l1d=CacheConfig(name="l1d", size_kb=4, ways=4, latency=4),
        l2=CacheConfig(name="l2", size_kb=16, ways=4, latency=7,
                       shared_by=4),
        l2_shared_per_tile=True,
        l3=CacheConfig(name="l3", size_kb=64, ways=8, latency=14,
                       banks=4, shared_by=16),
        boundweave=BoundWeaveConfig(host_threads=4, backend=backend,
                                    watchdog_budget_s=WATCHDOG_S,
                                    audit_every=audit_every),
    )
    return cfg.validate()


def _sim(backend, audit_every=1, instrs=25_000):
    config = _config(backend, audit_every)
    wl = mt_workload("blackscholes", scale=1 / 64,
                     num_threads=config.num_cores)
    return ZSim(config, threads=wl.make_threads(target_instrs=instrs))


def _stats_tree(result):
    tree = result.stats().to_dict()
    tree.pop("host", None)
    return tree


@pytest.fixture(scope="module")
def serial_baseline():
    """Fault-free serial run, with its sentinel's final chain."""
    sim = _sim("serial")
    tree = _stats_tree(sim.run())
    return tree, sim.integrity.chain


# ---------------------------------------------------------------------
# Fingerprint chain basics
# ---------------------------------------------------------------------


class TestFingerprintChain:
    def test_sentinel_installed_from_config(self):
        sim = _sim("serial", audit_every=2)
        assert isinstance(sim.integrity, IntegritySentinel)
        assert sim.integrity.audit_every == 2

    def test_disabled_by_default(self):
        cfg = dict(name="plain", num_tiles=1, cores_per_tile=4,
                   core=CoreConfig(model="simple"))
        sim = ZSim(SystemConfig(**cfg).validate(),
                   threads=mt_workload(
                       "blackscholes", scale=1 / 64,
                       num_threads=4).make_threads(target_instrs=5_000))
        assert sim.integrity is None

    def test_chain_identical_across_backends(self, serial_baseline):
        _tree, serial_chain = serial_baseline
        for backend in ("parallel", "process"):
            sim = _sim(backend)
            sim.run()
            assert sim.integrity.chain == serial_chain, backend
            assert sim.integrity.violations == 0

    def test_component_digests_name_subsystems(self):
        sim = _sim("serial")
        sim.run(max_intervals=3)
        digests = fingerprint_components(sim)
        assert "core0" in digests
        assert "sched" in digests
        assert any(key.startswith("mem.l1d") for key in digests)
        assert any(key.startswith("weave.domain") for key in digests)
        assert all(isinstance(v, int) for v in digests.values())

    def test_digests_are_deterministic(self):
        sim = _sim("serial")
        sim.run(max_intervals=3)
        assert fingerprint_components(sim, deep=True) == \
            fingerprint_components(sim, deep=True)

    def test_summary_shape(self):
        sim = _sim("serial", audit_every=2)
        result = sim.run(max_intervals=4)
        summary = sim.integrity.summary()
        assert summary["fingerprints"] == 4
        assert summary["audits"] == 2
        assert summary["violations"] == 0
        assert result.stats().to_dict()["host"]["integrity"] == summary


# ---------------------------------------------------------------------
# Online invariant auditing
# ---------------------------------------------------------------------


class TestAuditor:
    def test_clean_run_audits_quietly(self):
        sim = _sim("serial")
        sim.run()
        assert sim.integrity.audits > 0
        assert sim.integrity.violations == 0

    def test_inclusion_violation_detected(self):
        """Manufacture the silent-corruption shape by hand: evict a
        child-resident line from its parent without telling anyone."""
        sim = _sim("serial")
        sim.run(max_intervals=2)
        l1d = sim.hierarchy.l1d[0]
        for line, _state in l1d.array.resident_lines():
            parent, _net = l1d.parent_select(line)
            if getattr(parent, "array", None) is not None and \
                    parent.array.lookup(line, touch=False) is not None:
                parent.array.invalidate(line)
                break
        else:
            pytest.skip("no L1D-resident line cached in its parent")
        with pytest.raises(IntegrityError) as info:
            sim.integrity.audit(sim)
        assert info.value.component.startswith("mem.")
        assert info.value.excerpt

    def test_scheduler_violation_detected(self):
        sim = _sim("serial")
        sim.run(max_intervals=2)
        sched = sim.scheduler
        # The same thread registered as running on two cores at once.
        thread = next(t for t in sched.threads)
        sched._running[0] = thread
        sched._running[1] = thread
        with pytest.raises(IntegrityError) as info:
            sim.integrity.audit(sim)
        assert info.value.component == "sched"

    def test_integrity_error_is_execution_fault(self):
        err = IntegrityError("boom", component="core0", excerpt="x",
                             interval=3, phase="audit")
        assert isinstance(err, ExecutionFault)
        assert err.component == "core0"
        assert err.interval == 3


# ---------------------------------------------------------------------
# Silent corruption: detect, roll back, recover (the tentpole e2e)
# ---------------------------------------------------------------------


class TestSilentCorruptionRecovery:
    @pytest.mark.parametrize("backend", ("parallel", "process"))
    def test_corrupt_detected_and_rolled_back(self, backend,
                                              serial_baseline):
        baseline, _chain = serial_baseline
        sim = _sim(backend)
        sim.backend.fault_plan = FaultPlan.parse("corrupt@3:c2")
        supervisor = Supervisor(sim, max_retries=3, backoff_intervals=1)
        result = sim.run()
        assert supervisor.integrity_rollbacks == 1
        entry = supervisor.history[0]
        assert entry["kind"] == "IntegrityError"
        assert entry["component"].startswith("mem.")
        assert sim.backend.fault_plan.remaining() == []
        assert_equivalent(baseline, _stats_tree(result))

    def test_corruption_predating_detection(self, serial_baseline):
        """With stride 2, corruption lands at an unaudited barrier and
        propagates silently; the rollback must span back past it to the
        last *verified* barrier, not just the previous interval."""
        baseline, _chain = serial_baseline
        sim = _sim("parallel", audit_every=2)
        sim.backend.fault_plan = FaultPlan.parse("corrupt@3:c2")
        supervisor = Supervisor(sim, max_retries=3, backoff_intervals=1)
        result = sim.run()
        assert supervisor.integrity_rollbacks == 1
        assert supervisor.history[0]["interval"] == 4
        assert supervisor.history[0]["rollback_intervals"] == 2
        assert_equivalent(baseline, _stats_tree(result))

    def test_integrity_fault_demotes_immediately(self):
        sim = _sim("parallel")
        sim.backend.fault_plan = FaultPlan.parse("corrupt@3:c2")
        supervisor = Supervisor(sim, max_retries=3, backoff_intervals=1)
        sim.run()
        assert len(supervisor.demotions) == 1
        assert supervisor.demotions[0]["from"] == "parallel"

    def test_loud_corrupt_still_recovers(self, serial_baseline):
        """The d-selector flavor (weave queue timestamps) keeps its
        HorizonViolation path under the span supervisor."""
        baseline, _chain = serial_baseline
        sim = _sim("parallel")
        sim.backend.fault_plan = FaultPlan.parse("corrupt@3:d1")
        supervisor = Supervisor(sim, max_retries=3, backoff_intervals=1)
        result = sim.run()
        assert supervisor.recoveries == 1
        assert supervisor.history[0]["kind"] == "HorizonViolation"
        assert_equivalent(baseline, _stats_tree(result))

    def test_second_strike_escalates(self):
        """A divergence that reproduces at the same (interval,
        component) raises out of the supervisor: the fleet's breaker
        quarantines, recovery is not retried forever."""
        sim = _sim("parallel")
        supervisor = Supervisor(sim, max_retries=3, backoff_intervals=1)
        interval = sim.config.boundweave.interval_cycles
        supervisor.run_interval(interval)
        fault = IntegrityError("synthetic divergence",
                               component="core0", interval=2,
                               phase="audit")
        supervisor._recover_span(fault, 2 * interval)
        assert supervisor.integrity_rollbacks == 1
        with pytest.raises(IntegrityError):
            supervisor._recover_span(fault, 3 * interval)


# ---------------------------------------------------------------------
# Checkpoints: capsule records, resume verification, repro verify
# ---------------------------------------------------------------------


def _run_with_checkpoints(tmp_path, audit_every=1, every=2):
    sim = _sim("serial", audit_every=audit_every)
    sim.checkpointer = Checkpointer(str(tmp_path), every=every)
    result = sim.run()
    return sim, result


class TestCheckpointIntegration:
    def test_capsule_carries_integrity_record(self, tmp_path):
        sim, _result = _run_with_checkpoints(tmp_path)
        capsule = read_checkpoint(sim.checkpointer.last_path)
        record = capsule["meta"]["integrity"]
        assert record["interval"] == capsule["interval"]
        assert record["components"]
        verify_state(capsule["sim"], record, context="test")

    def test_resume_verifies_and_matches(self, tmp_path):
        baseline_tree = _stats_tree(_sim("serial").run())
        sim, _result = _run_with_checkpoints(tmp_path)
        capsule = read_checkpoint(sim.checkpointer.last_path)
        config = _config("serial")
        wl = mt_workload("blackscholes", scale=1 / 64,
                         num_threads=config.num_cores)
        resumed = ZSim.resume(
            capsule, wl.make_threads(target_instrs=25_000),
            backend="serial", flight=False)
        assert resumed.integrity is not None
        tree = _stats_tree(resumed.run())
        assert_equivalent(baseline_tree, tree)

    def test_resume_refuses_tampered_capsule(self, tmp_path):
        sim, _result = _run_with_checkpoints(tmp_path)
        path = sim.checkpointer.last_path
        capsule = read_checkpoint(path, load_sim=False)
        key = sorted(capsule["meta"]["integrity"]["components"])[0]
        capsule["meta"]["integrity"]["components"][key] ^= 1
        body = pickle.dumps(capsule, protocol=pickle.HIGHEST_PROTOCOL)
        with open(path, "wb") as fh:
            fh.write(b"repro-ckpt 1 %08x\n"
                     % (zlib.crc32(body) & 0xFFFFFFFF))
            fh.write(body)
        tampered = read_checkpoint(path)
        config = _config("serial")
        wl = mt_workload("blackscholes", scale=1 / 64,
                         num_threads=config.num_cores)
        with pytest.raises(IntegrityError) as info:
            ZSim.resume(tampered,
                        wl.make_threads(target_instrs=25_000),
                        backend="serial", flight=False)
        assert info.value.component == key

    def test_checkpointer_survives_write_failure(self, tmp_path,
                                                 monkeypatch):
        """Satellite: a full/read-only disk logs one warning and the
        run keeps going without resume capsules."""
        sim = _sim("serial")
        sim.checkpointer = Checkpointer(str(tmp_path), every=1)

        def enospc(*_args, **_kwargs):
            raise OSError(28, "No space left on device")
        monkeypatch.setattr("repro.resilience.checkpoint.os.replace",
                            enospc)
        result = sim.run()
        assert result.instrs > 0
        assert sim.checkpointer.saved == 0
        assert sim.checkpointer._write_failed
        events = [e for e in sim.flight.events()
                  if e["kind"] == "checkpoint_failed"]
        assert events
        # No half-written temp files left behind.
        assert not [p for p in tmp_path.iterdir()
                    if p.name.endswith(".tmp")]

    def test_write_checkpoint_cleans_tmp_on_oserror(self, tmp_path,
                                                    monkeypatch):
        sim = _sim("serial")
        sim.run(max_intervals=2)

        def enospc(*_args, **_kwargs):
            raise OSError(28, "No space left on device")
        monkeypatch.setattr("repro.resilience.checkpoint.os.replace",
                            enospc)
        with pytest.raises(OSError):
            write_checkpoint(str(tmp_path / "c.pkl"), sim, 2, 3000)
        assert list(tmp_path.iterdir()) == []


class TestVerifyCommand:
    def _checkpointed_run(self, tmp_path):
        ckpts = tmp_path / "ckpts"
        argv = ["run", "--config", "test", "--cores", "8",
                "--workload", "blackscholes", "--scale", "0.02",
                "--instrs", "20000", "--audit-every", "1",
                "--checkpoint-dir", str(ckpts),
                "--checkpoint-every", "2", "--no-flight"]
        assert cli_main(argv) == 0
        return ckpts

    def test_verify_certifies_clean_chain(self, tmp_path, capsys):
        ckpts = self._checkpointed_run(tmp_path)
        assert cli_main(["verify", str(ckpts)]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out
        assert "replayed 1 span(s)" in out
        assert "chain matches" in out

    def test_verify_flags_tampered_capsule(self, tmp_path, capsys):
        ckpts = self._checkpointed_run(tmp_path)
        paths = sorted(ckpts.glob("ckpt-*.pkl"))
        path = paths[-1]
        capsule = read_checkpoint(str(path), load_sim=False)
        key = sorted(capsule["meta"]["integrity"]["components"])[0]
        capsule["meta"]["integrity"]["components"][key] ^= 1
        body = pickle.dumps(capsule, protocol=pickle.HIGHEST_PROTOCOL)
        with open(path, "wb") as fh:
            fh.write(b"repro-ckpt 1 %08x\n"
                     % (zlib.crc32(body) & 0xFFFFFFFF))
            fh.write(body)
        assert cli_main(["verify", str(ckpts), "--replay", "0"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and key in out

    def test_verify_flags_missing_record(self, tmp_path, capsys):
        sim = _sim("serial", audit_every=0)   # no sentinel at all
        assert sim.integrity is None
        sim.checkpointer = Checkpointer(str(tmp_path), every=2)
        sim.run()
        assert cli_main(["verify", str(tmp_path), "--replay", "0"]) == 1
        assert "no integrity record" in capsys.readouterr().out


# ---------------------------------------------------------------------
# Config loader typing (satellite)
# ---------------------------------------------------------------------


class TestConfigTyping:
    def test_unknown_key_names_path(self):
        with pytest.raises(ConfigError, match="system.l2"):
            config_from_dict({"l2": {"assoc": 8}})

    def test_wrong_scalar_type_names_path(self):
        with pytest.raises(ConfigError,
                           match=r"system\.l2\.ways: expected int, "
                                 r"got str"):
            config_from_dict({"l2": {"ways": "8"}})

    def test_bool_is_not_an_int(self):
        with pytest.raises(ConfigError, match="expected int, got bool"):
            config_from_dict({"core": {"freq_mhz": True}})

    def test_int_accepted_where_float_declared(self):
        cfg = config_from_dict(
            {"boundweave": {"watchdog_budget_s": 2}})
        assert cfg.boundweave.watchdog_budget_s == 2

    def test_section_must_be_object(self):
        with pytest.raises(ConfigError, match="expected an object"):
            config_from_dict({"l2": "big"})

    def test_config_error_is_value_error(self):
        with pytest.raises(ValueError):
            config_from_dict({"l2": {"ways": "8"}})

    def test_audit_every_validated(self):
        with pytest.raises(ConfigError, match="audit_every"):
            config_from_dict({"boundweave": {"audit_every": -1}})

    def test_strict_config_flag_is_accepted(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["run", "--strict-config", "--instrs", "1000"])
        assert args.strict_config
