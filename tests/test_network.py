"""Tests for the zero-load NoC model."""

import pytest

from repro.config.system import NetworkConfig
from repro.memory.network import Network


def net(topology, tiles, **kwargs):
    return Network(NetworkConfig(topology=topology, **kwargs), tiles)


class TestRing:
    def test_same_tile_zero_hops(self):
        assert net("ring", 8).hops(3, 3) == 0

    def test_shortest_direction(self):
        ring = net("ring", 8)
        assert ring.hops(0, 1) == 1
        assert ring.hops(0, 7) == 1  # wraps around
        assert ring.hops(0, 4) == 4  # either way

    def test_latency_formula(self):
        ring = net("ring", 8, hop_latency=1, injection_latency=5)
        assert ring.latency(0, 2) == 5 + 2
        assert ring.latency(0, 0) == 5

    def test_symmetry(self):
        ring = net("ring", 6)
        for a in range(6):
            for b in range(6):
                assert ring.hops(a, b) == ring.hops(b, a)


class TestMesh:
    def test_manhattan_distance(self):
        mesh = net("mesh", 16)  # 4x4
        assert mesh.hops(0, 3) == 3    # same row
        assert mesh.hops(0, 12) == 3   # same column
        assert mesh.hops(0, 15) == 6   # opposite corner

    def test_router_stages_charged_per_hop(self):
        mesh = net("mesh", 16, hop_latency=1, router_stages=2,
                   injection_latency=5)
        assert mesh.latency(0, 1) == 5 + 1 * (1 + 2)
        assert mesh.latency(0, 15) == 5 + 6 * (1 + 2)

    def test_non_square_tile_count(self):
        mesh = net("mesh", 6)  # 3-wide grid
        assert mesh.hops(0, 5) == mesh.hops(5, 0) > 0


class TestIdeal:
    def test_zero_hops_everywhere(self):
        ideal = net("ideal", 64, injection_latency=5)
        assert ideal.hops(0, 63) == 0
        assert ideal.latency(0, 63) == 5


def test_unknown_topology_rejected():
    with pytest.raises(ValueError):
        net("torus", 8)


def test_round_trip_is_double():
    ring = net("ring", 8)
    assert ring.round_trip(0, 3) == 2 * ring.latency(0, 3)
