"""Tests for weave-phase timing models: cache banks, DDR3, DRAMSim."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.system import DDR3Timing, MemoryConfig
from repro.memory.access import StepKind
from repro.memory.dramsim import CycleDrivenDRAM, DRAMSimWeave
from repro.memory.weave import CacheBankWeave, MemCtrlWeave


class TestCacheBankWeave:
    def test_zero_load_service(self):
        bank = CacheBankWeave("b", latency=14)
        assert bank.occupy(100, StepKind.HIT) == 114
        assert bank.zero_load_service(StepKind.HIT) == 14

    def test_port_contention_serializes(self):
        bank = CacheBankWeave("b", latency=14, ports=1)
        first = bank.occupy(100, StepKind.HIT)
        second = bank.occupy(100, StepKind.HIT)
        assert second == first + bank.PORT_OCCUPANCY
        assert bank.port_stall_cycles == bank.PORT_OCCUPANCY

    def test_two_ports_allow_overlap(self):
        bank = CacheBankWeave("b", latency=14, ports=2)
        assert bank.occupy(100, StepKind.HIT) == 114
        assert bank.occupy(100, StepKind.HIT) == 114
        assert bank.port_stall_cycles == 0

    def test_mshr_exhaustion_stalls(self):
        bank = CacheBankWeave("b", latency=10, ports=16, mshrs=2,
                              miss_hold_cycles=100)
        bank.occupy(0, StepKind.MISS)
        bank.occupy(0, StepKind.MISS)
        third = bank.occupy(0, StepKind.MISS)
        # Must wait for the first MSHR to free at cycle 100.
        assert third >= 100
        assert bank.mshr_stall_cycles > 0

    def test_mshrs_free_over_time(self):
        bank = CacheBankWeave("b", latency=10, ports=16, mshrs=2,
                              miss_hold_cycles=50)
        bank.occupy(0, StepKind.MISS)
        bank.occupy(0, StepKind.MISS)
        late = bank.occupy(200, StepKind.MISS)  # both freed by then
        assert late == 210

    def test_hits_do_not_consume_mshrs(self):
        bank = CacheBankWeave("b", latency=10, ports=16, mshrs=1,
                              miss_hold_cycles=1000)
        bank.occupy(0, StepKind.MISS)
        hit = bank.occupy(10, StepKind.HIT)
        assert hit == 20
        assert bank.mshr_stall_cycles == 0

    def test_reset_clears_state(self):
        bank = CacheBankWeave("b", latency=10, ports=1)
        bank.occupy(0, StepKind.HIT)
        bank.reset()
        assert bank.occupy(0, StepKind.HIT) == 10
        assert bank.port_stall_cycles == 0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 10_000),
                              st.sampled_from([StepKind.HIT,
                                               StepKind.MISS])),
                    min_size=1, max_size=60))
    def test_finish_never_before_lower_bound(self, arrivals):
        """Conservatism: finish >= arrival + zero-load service."""
        bank = CacheBankWeave("b", latency=14, ports=2, mshrs=4)
        for cycle, kind in sorted(arrivals):
            finish = bank.occupy(cycle, kind)
            assert finish >= cycle + bank.zero_load_service(kind)


class TestMemCtrlWeave:
    def make(self, **kwargs):
        return MemCtrlWeave("mc", MemoryConfig(**kwargs), core_mhz=2000)

    def test_zero_load_matches_config(self):
        mc = self.make(zero_load_latency=100)
        finish = mc.occupy(1000, StepKind.READ, line=0)
        # Powerdown exit may add a few cycles after a long idle.
        assert finish >= 1000 + 100
        assert finish <= 1000 + 100 + 30
        assert mc.zero_load_service(StepKind.READ) == 100

    def test_bank_conflict_delays(self):
        mc = self.make()
        line = 0x40  # fixed channel and bank
        first = mc.occupy(1000, StepKind.READ, line)
        second = mc.occupy(1001, StepKind.READ, line)
        assert second > first
        assert mc.bank_conflict_cycles > 0

    def test_different_banks_overlap_but_share_bus(self):
        mc = self.make()
        # Wake the channel just before, on an unrelated bank, so neither
        # measured access pays the powerdown-exit penalty.
        mc.occupy(1980, StepKind.READ, line=0x32)
        a = mc.occupy(2000, StepKind.READ, line=0x0)
        b = mc.occupy(2000, StepKind.READ, line=0x30)  # other bank
        assert abs(b - a) <= mc.burst_core_cycles + 1
        assert mc.bank_conflict_cycles == 0
        assert mc.bus_conflict_cycles > 0

    def test_writeback_cheaper_than_read(self):
        mc = self.make()
        mc.occupy(1000, StepKind.READ, 0)
        read = mc.occupy(5000, StepKind.READ, 0x100)
        mc.reset()
        mc.occupy(1000, StepKind.READ, 0)
        wback = mc.occupy(5000, StepKind.WBACK, 0x100)
        assert wback < read

    def test_powerdown_exit_after_idle(self):
        mc = self.make()
        mc.occupy(0, StepKind.READ, 0)
        mc.occupy(100_000, StepKind.READ, 0)  # long idle
        assert mc.powerdown_exits >= 1

    def test_no_powerdown_when_busy(self):
        mc = self.make()
        # Both lines map to channel 0 ((line >> 4) % channels) but to
        # different banks, so the second access finds the channel awake.
        mc.occupy(1000, StepKind.READ, 0x00)
        mc.occupy(1010, StepKind.READ, 0x30)
        assert mc.powerdown_exits <= 1  # only the first cold access

    def test_saturation_queues(self):
        """Back-to-back same-channel requests pile up (STREAM's case)."""
        mc = self.make(channels_per_controller=1)
        finishes = [mc.occupy(i, StepKind.READ, line=i * 16)
                    for i in range(0, 100)]
        assert finishes[-1] > 100 + mc.zero_load_service(StepKind.READ)


class TestCycleDrivenDRAM:
    def test_row_hit_faster_than_conflict(self):
        t = DDR3Timing()
        dram = CycleDrivenDRAM(t)
        r1 = dram.enqueue(bank=0, row=7)
        start = dram.run_until_done(r1)
        r2 = dram.enqueue(bank=0, row=7)       # row hit
        hit_done = dram.run_until_done(r2) - start
        r3 = dram.enqueue(bank=0, row=9)       # row conflict
        conflict_done = dram.run_until_done(r3) - (start + hit_done)
        assert dram.row_hits == 1
        assert dram.row_misses == 2
        assert hit_done < conflict_done

    def test_fcfs_no_bypass(self):
        dram = CycleDrivenDRAM(DDR3Timing())
        slow = dram.enqueue(bank=0, row=1)
        dram.run_until_done(slow)
        blocked = dram.enqueue(bank=0, row=2)   # conflict: slow
        ready = dram.enqueue(bank=1, row=1)     # would be fast
        done_blocked = dram.run_until_done(blocked)
        done_ready = dram.run_until_done(ready)
        assert done_ready > done_blocked  # strictly served in order

    def test_completion_recorded_once(self):
        dram = CycleDrivenDRAM(DDR3Timing())
        req = dram.enqueue(0, 0)
        assert dram.completed(req) is None
        done = dram.run_until_done(req)
        assert dram.completed(req) == done


class TestDRAMSimGlue:
    def test_glue_monotone_and_conservative(self):
        weave = DRAMSimWeave("ds", MemoryConfig(), core_mhz=2000)
        prev = 0
        for i in range(20):
            cycle = i * 50
            finish = weave.occupy(cycle, StepKind.READ, line=i * 8)
            assert finish >= cycle
            assert finish >= prev - 1000  # sanity: no wild regressions
            prev = finish

    def test_glue_contention_slows_bursts(self):
        weave = DRAMSimWeave("ds", MemoryConfig(), core_mhz=2000)
        burst = [weave.occupy(100, StepKind.READ, line=i * 2)
                 for i in range(30)]
        assert burst[-1] > burst[0]

    def test_reset(self):
        weave = DRAMSimWeave("ds", MemoryConfig(), core_mhz=2000)
        weave.occupy(0, StepKind.READ, 0)
        weave.reset()
        assert all(d.now == 0 for d in weave.drams)
