"""Tests for the synthetic workload substrate and suites."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.opcodes import Opcode
from repro.workloads.base import (
    KernelProgram,
    KernelSpec,
    PRIVATE_BASE,
    PRIVATE_STRIDE,
    SHARED_BASE,
    kernel_stream,
)
from repro.workloads.multithreaded import (
    FIGURE2_WORKLOADS,
    MULTITHREADED,
    PARSEC,
    SPEC_OMP,
    SPLASH2,
    TABLE4_WORKLOADS,
    default_threads,
    mt_workload,
)
from repro.workloads.patterns import (
    ChasePattern,
    HotColdPattern,
    RandomPattern,
    StreamPattern,
    make_pattern,
)
from repro.workloads.spec_cpu import SPEC_CPU2006, spec_suite, spec_workload


class TestPatterns:
    def test_stream_sequential_and_wraps(self):
        pattern = StreamPattern(0x1000, footprint=64, stride=8)
        addrs = [pattern() for _ in range(10)]
        assert addrs[:3] == [0x1000, 0x1008, 0x1010]
        assert addrs[8] == 0x1000  # wrapped

    def test_random_stays_in_footprint(self):
        rng = random.Random(1)
        pattern = RandomPattern(0x2000, 1024, rng)
        for _ in range(200):
            assert 0x2000 <= pattern() < 0x2000 + 1024

    def test_chase_is_full_permutation(self):
        """The chase visits every line exactly once per cycle — the
        no-reuse property that makes mcf memory-bound."""
        rng = random.Random(2)
        footprint = 64 * 64
        pattern = ChasePattern(0, footprint, rng)
        visited = {pattern() for _ in range(64)}
        assert len(visited) == 64

    def test_hot_cold_mixing(self):
        rng = random.Random(3)
        cold = StreamPattern(0, 1 << 20, 64)
        pattern = HotColdPattern(cold, 1 << 20, hot_bytes=4096,
                                 hot_fraction=0.5, rng=rng)
        hot = sum(1 for _ in range(1000)
                  if (1 << 20) <= pattern() < (1 << 20) + 4096)
        assert 350 < hot < 650

    def test_make_pattern_kinds(self):
        rng = random.Random(4)
        for kind in ("stream", "stride", "random", "chase"):
            pattern = make_pattern(kind, 0, 4096, rng)
            assert isinstance(pattern(), int)
        with pytest.raises(ValueError):
            make_pattern("zigzag", 0, 4096, rng)


class TestKernelProgram:
    def test_body_instruction_mix(self):
        spec = KernelSpec(mem_ratio=0.5, write_ratio=0.5, body_instrs=18)
        kprog = KernelProgram(spec)
        body = kprog.bodies[0]
        opcodes = [i.opcode for i in body.instructions]
        assert opcodes[-1] == Opcode.COND_BRANCH
        assert opcodes[-2] == Opcode.CMP
        loads = opcodes.count(Opcode.LOAD)
        stores = opcodes.count(Opcode.STORE)
        assert loads == stores == 4  # 16 work instrs * 0.5 mem * 0.5 wr

    def test_code_blocks_are_clones_at_distinct_addresses(self):
        kprog = KernelProgram(KernelSpec(code_blocks=4))
        addresses = {b.address for b in kprog.bodies}
        assert len(addresses) == 4

    def test_programs_have_distinct_code_bases(self):
        a = KernelProgram(KernelSpec(name="a"))
        b = KernelProgram(KernelSpec(name="b"))
        assert a.program.code_base != b.program.code_base


class TestKernelStream:
    def test_emits_requested_instructions(self):
        kprog = KernelProgram(KernelSpec(branch_rand=0.0))
        total = sum(e.block.num_instrs
                    for e in kernel_stream(kprog, target_instrs=5000))
        assert 5000 <= total < 5200

    def test_addresses_fill_every_mem_slot(self):
        kprog = KernelProgram(KernelSpec(mem_ratio=0.5))
        for exec_ in kernel_stream(kprog, target_instrs=2000):
            assert len(exec_.addrs) == exec_.block.num_mem_slots

    def test_deterministic_for_seed(self):
        def trace():
            kprog = KernelProgram(KernelSpec(seed=9, branch_rand=0.3))
            return [(e.block.bbl_id, e.addrs, e.taken)
                    for e in kernel_stream(kprog, target_instrs=3000)]
        # Note: block ids are per-program so compare shapes.
        a, b = trace(), trace()
        assert [(x[1], x[2]) for x in a] == [(x[1], x[2]) for x in b]

    def test_threads_use_disjoint_private_regions(self):
        spec = KernelSpec(shared_fraction=0.0, footprint_kb=64)
        kprog = KernelProgram(spec)
        for tid in range(3):
            lo = PRIVATE_BASE + tid * PRIVATE_STRIDE
            hi = lo + PRIVATE_STRIDE
            for exec_ in kernel_stream(kprog, thread_id=tid,
                                       num_threads=4,
                                       target_instrs=2000):
                assert all(lo <= a < hi for a in exec_.addrs)

    def test_shared_accesses_present_for_mt(self):
        spec = KernelSpec(shared_fraction=0.5, shared_kb=64,
                          barrier_iters=0)
        kprog = KernelProgram(spec)
        shared = total = 0
        for exec_ in kernel_stream(kprog, thread_id=0, num_threads=4,
                                   target_instrs=4000):
            for addr in exec_.addrs:
                total += 1
                shared += SHARED_BASE <= addr < SHARED_BASE + (1 << 30)
        assert total > 0
        assert 0.3 < shared / total < 0.7

    def test_barrier_phases_match_across_threads(self):
        """Every thread of a barrier workload emits the same barrier
        sequence — the property that prevents deadlock."""
        spec = KernelSpec(barrier_iters=50, imbalance=0.3)
        kprog = KernelProgram(spec)

        def barrier_keys(tid):
            return [e.syscall.key
                    for e in kernel_stream(kprog, tid, 4,
                                           target_instrs=20_000)
                    if e.syscall is not None
                    and type(e.syscall).__name__ == "Barrier"]
        keys = [barrier_keys(tid) for tid in range(4)]
        assert keys[0] == keys[1] == keys[2] == keys[3]
        assert len(keys[0]) >= 1

    def test_lock_sections_emit_paired_syscalls(self):
        spec = KernelSpec(lock_iters=10, barrier_iters=0)
        kprog = KernelProgram(spec)
        names = [type(e.syscall).__name__
                 for e in kernel_stream(kprog, 0, 2, target_instrs=5000)
                 if e.syscall is not None]
        assert names.count("Lock") == names.count("Unlock") >= 1


class TestSuites:
    def test_spec_suite_complete(self):
        assert len(SPEC_CPU2006) == 29
        assert len(spec_suite(scale=0.1)) == 29

    def test_unknown_spec_name(self):
        with pytest.raises(ValueError):
            spec_workload("notabenchmark")

    def test_scale_shrinks_footprint(self):
        big = spec_workload("mcf", scale=1.0)
        small = spec_workload("mcf", scale=1 / 64)
        assert small.spec.footprint_kb < big.spec.footprint_kb

    def test_mt_suite_complete(self):
        assert len(MULTITHREADED) == 23  # 22 benchmarks + stream
        assert len(PARSEC) == 6
        assert len(SPLASH2) == 7
        assert len(SPEC_OMP) == 9
        assert len(FIGURE2_WORKLOADS) == 10
        assert len(TABLE4_WORKLOADS) == 13

    def test_power_of_two_workloads_use_four_threads(self):
        for name in ("radix", "ocean", "fft", "fluidanimate"):
            assert default_threads(name) == 4

    def test_mt_workload_threads(self):
        workload = mt_workload("canneal", scale=1 / 32)
        threads = workload.make_threads(target_instrs=10_000)
        assert len(threads) == default_threads("canneal")
        names = {t.name for t in threads}
        assert len(names) == len(threads)

    def test_workload_shares_translation_cache(self):
        workload = mt_workload("blackscholes", scale=1 / 32)
        threads = workload.make_threads(target_instrs=5_000)
        caches = {id(t.stream.tcache) for t in threads}
        assert len(caches) == 1


@settings(max_examples=10, deadline=None)
@given(st.sampled_from(SPEC_CPU2006))
def test_every_spec_workload_streams(name):
    workload = spec_workload(name, scale=1 / 128)
    (thread,) = workload.make_threads(target_instrs=1500)
    consumed = list(thread.stream)
    assert consumed
    assert sum(d.block.num_instrs for d, _e in consumed) >= 1500
