"""Tests for the hierarchy builder: wiring, latencies, traces, stats."""

import pytest

from repro.config import small_test_system, tiled_chip, westmere
from repro.memory.access import StepKind
from repro.memory.hierarchy import MemoryHierarchy, hash_line
from repro.stats.counters import StatsNode


class TestConstruction:
    def test_westmere_shape(self):
        h = MemoryHierarchy(westmere(num_cores=6))
        assert len(h.l1i) == len(h.l1d) == 6
        assert len(h.l2s) == 6       # private per core
        assert len(h.l3_banks) == 6  # Table 2: 6 banks
        assert len(h.mainmem.ctrl_weaves) == 1

    def test_tiled_chip_shape(self):
        cfg = tiled_chip(num_tiles=4)
        h = MemoryHierarchy(cfg)
        assert len(h.l1d) == 64
        assert len(h.l2s) == 4        # shared per tile
        assert len(h.l3_banks) == 4   # one bank per tile
        assert len(h.mainmem.ctrl_weaves) == 4

    def test_l2_children_are_tile_l1s(self):
        cfg = tiled_chip(num_tiles=2, cores_per_tile=4)
        h = MemoryHierarchy(cfg)
        l2 = h.l2s[0]
        # 4 cores x (L1I + L1D)
        assert len(l2.children) == 8
        assert all(c.tile == 0 for c in l2.children)

    def test_no_weave_build(self):
        h = MemoryHierarchy(small_test_system(), build_weave=False)
        assert h.weave_components == []
        assert all(c.weave is None for c in h.l3_banks)

    def test_weave_components_cover_shared_levels(self):
        cfg = tiled_chip(num_tiles=2)
        h = MemoryHierarchy(cfg)
        names = {c.name for c in h.weave_components}
        assert "l3b0" in names and "l3b1" in names
        assert "memctrl0" in names
        assert "l2-0" in names  # shared-per-tile L2 gets a weave model


class TestBankSelection:
    def test_hash_spreads_consecutive_lines(self):
        cfg = westmere()
        h = MemoryHierarchy(cfg)
        select = h.l2s[0].parent_select
        counts = {}
        for line in range(6000):
            bank, _ = select(line)
            counts[bank.name] = counts.get(bank.name, 0) + 1
        # All banks used, roughly uniformly (within 2x of each other).
        assert len(counts) == 6
        assert max(counts.values()) < 2 * min(counts.values())

    def test_line_maps_to_single_bank(self):
        h = MemoryHierarchy(westmere())
        selects = [l2.parent_select for l2 in h.l2s]
        for line in (0, 17, 12345):
            banks = {select(line)[0] for select in selects}
            assert len(banks) == 1

    def test_hash_line_deterministic(self):
        assert hash_line(1234) == hash_line(1234)
        assert hash_line(1) != hash_line(2)


class TestZeroLoadLatency:
    def test_l1_hit_latency(self, tiny_config):
        h = MemoryHierarchy(tiny_config)
        h.access(0, 0x1000, write=False)
        result = h.access(0, 0x1000, write=False)
        assert result.latency == tiny_config.l1d.latency
        assert result.hit_level == "l1d"

    def test_miss_latency_accumulates_levels(self, tiny_config):
        h = MemoryHierarchy(tiny_config)
        result = h.access(0, 0x1000, write=False)
        cfg = tiny_config
        floor = (cfg.l1d.latency + cfg.l2.latency + cfg.l3.latency
                 + cfg.memory.zero_load_latency)
        assert result.latency >= floor
        assert result.missed_levels == ("l1d", "l2", "l3")

    def test_l3_hit_cheaper_than_memory(self, tiny_config):
        h = MemoryHierarchy(tiny_config)
        h.access(0, 0x1000, write=False)
        mem_miss = h.access(1, 0x2000, write=False)
        l3_hit = h.access(1, 0x1000, write=False)
        assert l3_hit.latency < mem_miss.latency


class TestTraceRecording:
    def test_private_hit_records_no_steps(self, tiny_config):
        h = MemoryHierarchy(tiny_config)
        h.access(0, 0x1000, write=False)
        result = h.access(0, 0x1000, write=False)
        assert result.steps == ()
        assert not result.beyond_private

    def test_memory_miss_records_chain(self, tiny_config):
        h = MemoryHierarchy(tiny_config)
        result = h.access(0, 0x1000, write=False)
        kinds = [kind for _c, _o, kind in result.steps]
        assert kinds == [StepKind.MISS, StepKind.READ]
        offsets = [offset for _c, offset, _k in result.steps]
        assert offsets == sorted(offsets)
        assert all(0 <= off < result.latency for off in offsets)

    def test_l3_hit_records_hit_step(self, tiny_config):
        h = MemoryHierarchy(tiny_config)
        h.access(0, 0x1000, write=False)
        result = h.access(1, 0x1000, write=False)
        kinds = [kind for _c, _o, kind in result.steps]
        assert kinds == [StepKind.HIT]

    def test_dirty_l3_eviction_records_wback(self, tiny_config):
        h = MemoryHierarchy(tiny_config)
        seen_wback = False
        # Write many lines so dirty L3 evictions reach memory.
        for i in range(4096):
            result = h.access(0, i * 64, write=True)
            if result.wbacks:
                seen_wback = True
                comp, _off, kind = result.wbacks[0]
                assert kind == StepKind.WBACK
                assert comp.name.startswith("memctrl")
        assert seen_wback


class TestStats:
    def test_fill_stats_tree(self, tiny_config):
        h = MemoryHierarchy(tiny_config)
        h.access(0, 0x1000, write=True)
        root = StatsNode("mem")
        h.fill_stats(root)
        tree = root.to_dict()
        assert tree["l1d-0"]["misses"] == 1
        assert tree["mem"]["reads"] == 1

    def test_profiler_hook_called(self, tiny_config):
        calls = []

        class Probe:
            def record(self, result, cycle):
                calls.append((result.line, cycle))

        h = MemoryHierarchy(tiny_config, profiler=Probe())
        h.access(0, 0x1000, write=False, cycle=123)
        assert calls == [(0x1000 >> 6, 123)]


class TestConfigValidation:
    def test_interval_floor(self):
        cfg = small_test_system()
        cfg.boundweave.interval_cycles = 5
        with pytest.raises(ValueError):
            cfg.validate()

    def test_line_size_mismatch(self):
        cfg = small_test_system()
        cfg.l2.line_bytes = 128
        with pytest.raises(ValueError):
            cfg.validate()

    def test_zero_cores(self):
        cfg = small_test_system()
        cfg.cores_per_tile = 0
        with pytest.raises(ValueError):
            cfg.validate()
