"""Tests for the host-parallelism model (Figure 8 machinery)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.host import HostModel, makespan


class TestMakespan:
    def test_empty(self):
        assert makespan([], 4) == 0.0

    def test_single_worker_is_sum(self):
        assert makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_enough_workers_is_max_when_equal(self):
        assert makespan([2.0, 2.0, 2.0], 3) == 2.0

    def test_wake_order_greedy(self):
        # Two workers, items in wake order: [3, 1, 1, 1].
        # w1 gets 3; w2 gets 1,1,1 -> makespan 3.
        assert makespan([3.0, 1.0, 1.0, 1.0], 2) == 3.0

    def test_more_workers_never_slower(self):
        items = [0.5, 1.5, 0.25, 2.0, 1.0]
        times = [makespan(items, h) for h in (1, 2, 4, 8)]
        assert times == sorted(times, reverse=True)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.001, 10.0), min_size=1, max_size=30),
           st.integers(1, 16))
    def test_bounds(self, items, workers):
        span = makespan(items, workers)
        assert span >= max(items) - 1e-9
        assert span <= sum(items) + 1e-9
        assert span >= sum(items) / workers - 1e-9


class TestHostModel:
    def model_with_data(self, intervals=10, cores=8):
        model = HostModel(host_threads=(1, 2, 4, 8))
        for i in range(intervals):
            bound = [(c, 0.01 + 0.001 * ((i + c) % 3))
                     for c in range(cores)]
            model.record_interval(bound, [100, 80, 60, 40], 0.05)
        return model

    def test_speedup_one_thread_is_one(self):
        model = self.model_with_data()
        assert model.speedup(1) == pytest.approx(1.0)

    def test_speedup_monotone(self):
        model = self.model_with_data()
        curve = [s for _h, s in model.speedup_curve()]
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:]))

    def test_speedup_bounded_by_thread_count(self):
        model = self.model_with_data()
        for h, s in model.speedup_curve():
            assert s <= h + 1e-9

    def test_untracked_thread_count_raises(self):
        model = self.model_with_data()
        with pytest.raises(KeyError):
            model.parallel_time(3)

    def test_weave_serial_fraction_limits_speedup(self):
        """A heavy single-domain weave phase caps speedup (Amdahl)."""
        model = HostModel(host_threads=(1, 16))
        for _ in range(5):
            model.record_interval([(c, 0.01) for c in range(16)],
                                  [1000], 1.0)  # one domain: serial
        # Weave (serial) ~1s vs bound 0.16s: speedup well under 2.
        assert model.speedup(16) < 2.0

    def test_no_weave_data(self):
        model = HostModel(host_threads=(1, 4))
        model.record_interval([(0, 0.1), (1, 0.1)], [], 0.0)
        assert model.speedup(4) > 1.0
