"""Tests for eviction-driven path-altering interference (Figure 2's
second class): rare with realistic associativity, visible at 1-2 ways."""

import dataclasses

import pytest

from repro.config import small_test_system
from repro.core import InterferenceProfiler, ZSim
from repro.memory.access import AccessContext, AccessResult
from repro.workloads.base import KernelSpec, Workload


def access(core, line, cycle, evictions=()):
    ctx = AccessContext(core, line, write=True)
    ctx.record_miss("l1d")
    ctx.shared_evictions = tuple(evictions)
    return AccessResult(ctx), cycle


class TestEvictionClassification:
    def test_eviction_of_other_cores_line_counts(self):
        prof = InterferenceProfiler((1000,), track_evictions=True)
        prof.record(*access(0, 10, 100))
        prof.record(*access(1, 50, 200, evictions=(10,)))
        assert prof.eviction_interfering[1000] == 1

    def test_eviction_of_own_line_does_not_count(self):
        prof = InterferenceProfiler((1000,), track_evictions=True)
        prof.record(*access(0, 10, 100))
        prof.record(*access(0, 50, 200, evictions=(10,)))
        assert prof.eviction_interfering[1000] == 0

    def test_eviction_of_untouched_line_does_not_count(self):
        prof = InterferenceProfiler((1000,), track_evictions=True)
        prof.record(*access(0, 10, 100))
        prof.record(*access(1, 50, 200, evictions=(999,)))
        assert prof.eviction_interfering[1000] == 0

    def test_cross_window_eviction_does_not_count(self):
        prof = InterferenceProfiler((1000,), track_evictions=True)
        prof.record(*access(0, 10, 900))
        prof.record(*access(1, 50, 1100, evictions=(10,)))
        assert prof.eviction_interfering[1000] == 0

    def test_disabled_by_default(self):
        prof = InterferenceProfiler((1000,))
        prof.record(*access(0, 10, 100))
        prof.record(*access(1, 50, 200, evictions=(10,)))
        assert prof.eviction_interfering[1000] == 0

    def test_fraction_helper(self):
        prof = InterferenceProfiler((1000,), track_evictions=True)
        prof.record(*access(0, 10, 100))
        prof.record(*access(1, 50, 200, evictions=(10,)))
        assert prof.eviction_fraction(1000) == pytest.approx(0.5)


class TestLowAssociativityEffect:
    """The paper: eviction interference "is extremely rare unless we use
    shared caches with unrealistically low associativity (1 or 2 ways)"."""

    def run(self, l3_ways):
        cfg = small_test_system(num_cores=4, core_model="simple")
        cfg = dataclasses.replace(cfg, l3=dataclasses.replace(
            cfg.l3, ways=l3_ways, repl="lru"))
        prof = InterferenceProfiler((10_000,), track_evictions=True)
        spec = KernelSpec(name="evict-%d" % l3_ways, footprint_kb=96,
                          mem_ratio=0.4, hot_fraction=0.0,
                          pattern="random", shared_fraction=0.3,
                          shared_kb=64, barrier_iters=0, seed=12)
        wl = Workload(spec, 4)
        sim = ZSim(cfg, wl.make_threads(target_instrs=40_000,
                                        num_threads=4),
                   contention_model="none", profiler=prof)
        sim.run()
        return prof.eviction_fraction(10_000)

    def test_low_associativity_amplifies_eviction_interference(self):
        direct_mapped = self.run(l3_ways=1)
        realistic = self.run(l3_ways=8)
        assert direct_mapped > 2 * realistic
        assert direct_mapped > 0
