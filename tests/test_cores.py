"""Tests for the core timing models (IPC1 and instruction-driven OOO)."""

import pytest

from repro.config.system import CoreConfig
from repro.cpu import OOOCore, SimpleCore, make_core
from repro.cpu.base import RunOutcome
from repro.isa.opcodes import Opcode
from repro.isa.program import BBLExec, Instruction, Program
from repro.isa.registers import fp, gp
from repro.dbt.instrumentation import InstrumentedStream
from repro.virt.syscalls import GetTime


class FakeResult:
    """Minimal AccessResult stand-in with controllable latency."""

    def __init__(self, latency, missed, line, write, core_id):
        self.latency = latency
        self.missed_levels = ("l1d",) if missed else ()
        self.hit_level = None if missed else "l1d"
        self.steps = ()
        self.wbacks = ()
        self.line = line
        self.write = write
        self.core_id = core_id
        self.invalidations = 0


class FakeMemory:
    """Ideal memory: fixed latency, every access 'hits' (or misses)."""

    def __init__(self, latency=4, missed=False):
        self.latency = latency
        self.missed = missed
        self.accesses = []

    def access(self, core_id, addr, write, cycle=0, ifetch=False):
        self.accesses.append((core_id, addr, write, cycle, ifetch))
        return FakeResult(self.latency, self.missed, addr >> 6, write,
                          core_id)


def blocks(instr_lists, name="p"):
    program = Program(name)
    return [program.add_block(instrs) for instrs in instr_lists]


def run_core(core, bbl_execs):
    core.attach(InstrumentedStream(iter(bbl_execs)))
    outcome = core.run_until(10 ** 9)
    assert outcome == RunOutcome.DONE
    return core


def alu_chain_block(n, dependent):
    instrs = []
    for i in range(n):
        reg = gp(2) if dependent else gp(2 + i % 10)
        instrs.append(Instruction(Opcode.ALU, reg, gp(1), dst1=reg))
    return blocks([instrs])[0]


class TestSimpleCore:
    def make(self, mem=None):
        return SimpleCore(0, mem or FakeMemory(), CoreConfig(model="simple"))

    def test_ipc_one_on_alu(self):
        block = alu_chain_block(8, dependent=True)
        core = run_core(self.make(), [BBLExec(block) for _ in range(100)])
        assert core.instrs == 800
        # IPC=1 modulo a couple of I-fetch effects.
        assert core.instrs / core.cycle > 0.95

    def test_l1_hit_loads_free(self):
        """L1 hits are covered by the instruction's own cycle."""
        block = blocks([[Instruction(Opcode.LOAD, gp(1), dst1=gp(2)),
                         Instruction(Opcode.ALU, gp(2), gp(3), gp(2))]])[0]
        core = run_core(self.make(FakeMemory(latency=4, missed=False)),
                        [BBLExec(block, (0x1000,)) for _ in range(50)])
        assert core.instrs / core.cycle > 0.95

    def test_miss_latency_charged(self):
        block = blocks([[Instruction(Opcode.LOAD, gp(1), dst1=gp(2))]])[0]
        mem = FakeMemory(latency=100, missed=True)
        core = run_core(self.make(mem),
                        [BBLExec(block, (i * 64,)) for i in range(20)])
        assert core.cycle >= 20 * 100

    def test_limit_outcome(self):
        block = alu_chain_block(4, True)
        core = self.make()
        core.attach(InstrumentedStream(
            BBLExec(block) for _ in range(10_000)))
        assert core.run_until(100) == RunOutcome.LIMIT
        assert core.cycle >= 100

    def test_blocked_without_thread(self):
        assert self.make().run_until(100) == RunOutcome.BLOCKED

    def test_syscall_outcome(self):
        program = Program("s")
        sys_block = program.add_block([Instruction(Opcode.SYSCALL)])
        desc = GetTime()
        core = self.make()
        core.attach(InstrumentedStream(iter([BBLExec(sys_block,
                                                     syscall=desc)])))
        assert core.run_until(10 ** 9) == RunOutcome.SYSCALL
        assert core.pending_syscall is desc

    def test_apply_delay(self):
        core = self.make()
        core.apply_delay(50)
        assert core.cycle == 50
        with pytest.raises(ValueError):
            core.apply_delay(-1)

    def test_skip_to_never_goes_back(self):
        core = self.make()
        core.skip_to(100)
        core.skip_to(50)
        assert core.cycle == 100


class TestOOOCore:
    def make(self, mem=None, **cfg):
        return OOOCore(0, mem or FakeMemory(), CoreConfig(model="ooo",
                                                          **cfg))

    def ipc_of(self, block, reps=300, mem=None, addrs=()):
        core = self.make(mem)
        run_core(core, [BBLExec(block, addrs) for _ in range(reps)])
        return core.instrs / core.cycle

    def test_dependent_chain_ipc_one(self):
        ipc = self.ipc_of(alu_chain_block(8, dependent=True))
        assert 0.8 < ipc < 1.2

    def test_independent_alu_exceeds_ipc_one(self):
        """Independent work exploits superscalar issue (3 ALU ports)."""
        ipc = self.ipc_of(alu_chain_block(8, dependent=False))
        assert ipc > 1.8

    def test_ooo_faster_than_simple_on_ilp(self):
        block = alu_chain_block(8, dependent=False)
        ooo = self.make()
        run_core(ooo, [BBLExec(block) for _ in range(200)])
        simple = SimpleCore(0, FakeMemory(), CoreConfig(model="simple"))
        run_core(simple, [BBLExec(block) for _ in range(200)])
        assert ooo.cycle < simple.cycle

    def test_fp_latency_bound_chain(self):
        """A dependent FPADD chain runs at ~1/3 IPC (latency 3)."""
        instrs = [Instruction(Opcode.FPADD, fp(0), fp(1), dst1=fp(0))
                  for _ in range(8)]
        block = blocks([instrs])[0]
        ipc = self.ipc_of(block)
        assert 0.25 < ipc < 0.45

    def test_port_contention_single_port(self):
        """Independent FPMULs all fight for port 0 -> IPC <= 1."""
        instrs = [Instruction(Opcode.FPMUL, fp(i % 8), fp((i + 1) % 8),
                              dst1=fp(i % 8)) for i in range(8)]
        # Make them independent: each writes a different register.
        instrs = [Instruction(Opcode.FPMUL, fp(0), fp(1), dst1=fp(i % 8))
                  for i in range(8)]
        block = blocks([instrs])[0]
        assert self.ipc_of(block) <= 1.05

    def test_store_to_load_forwarding(self):
        """A load of a just-stored word bypasses the memory system."""
        instrs = [Instruction(Opcode.STORE, gp(1), gp(2)),
                  Instruction(Opcode.LOAD, gp(1), dst1=gp(3))]
        block = blocks([instrs])[0]
        mem = FakeMemory(latency=4)
        core = self.make(mem)
        run_core(core, [BBLExec(block, (0x1000,) * 2) for _ in range(50)])
        assert core.forwarded_loads == 50
        loads_issued = sum(1 for a in mem.accesses
                           if not a[2] and not a[4])
        assert loads_issued == 0

    def test_no_forwarding_different_address(self):
        instrs = [Instruction(Opcode.STORE, gp(1), gp(2)),
                  Instruction(Opcode.LOAD, gp(1), dst1=gp(3))]
        block = blocks([instrs])[0]
        core = self.make()
        execs = [BBLExec(block, (0x1000 + i * 128, 0x8000 + i * 128))
                 for i in range(50)]
        run_core(core, execs)
        assert core.forwarded_loads == 0

    def test_mispredict_penalty_slows_random_branches(self):
        program = Program("br")
        body = [Instruction(Opcode.ALU, gp(1), gp(2), gp(1)),
                Instruction(Opcode.CMP, gp(1), gp(3)),
                Instruction(Opcode.COND_BRANCH)]
        block = program.add_block(body)
        predictable = [BBLExec(block, (), taken=True) for _ in range(400)]
        import random as _r
        rng = _r.Random(3)
        unpredictable = [BBLExec(block, (), taken=rng.random() < 0.5)
                         for _ in range(400)]
        core_p = self.make()
        run_core(core_p, predictable)
        core_u = self.make()
        run_core(core_u, unpredictable)
        assert core_u.mispredicts > core_p.mispredicts
        assert core_u.cycle > core_p.cycle * 1.5

    def test_unconditional_jump_never_mispredicts(self):
        program = Program("jmp")
        block = program.add_block([Instruction(Opcode.ALU, gp(1), gp(2)),
                                   Instruction(Opcode.JMP)])
        core = self.make()
        run_core(core, [BBLExec(block, (), taken=True)
                        for _ in range(100)])
        assert core.mispredicts == 0
        assert core.cond_branches == 0

    def test_rob_limits_memory_parallelism(self):
        """With a tiny ROB, a long miss stalls the backend."""
        instrs = [Instruction(Opcode.LOAD, gp(1), dst1=gp(2))] + \
            [Instruction(Opcode.ALU, gp(3 + i % 8), gp(1),
                         dst1=gp(3 + i % 8)) for i in range(7)]
        block = blocks([instrs])[0]
        mem = FakeMemory(latency=200, missed=True)
        small = self.make(mem, rob_size=16)
        run_core(small, [BBLExec(block, (i * 64,)) for i in range(50)])
        mem2 = FakeMemory(latency=200, missed=True)
        big = self.make(mem2, rob_size=256)
        run_core(big, [BBLExec(block, (i * 64,)) for i in range(50)])
        assert big.cycle < small.cycle

    def test_fence_serializes_memory(self):
        loads = [Instruction(Opcode.LOAD, gp(1), dst1=gp(2 + i))
                 for i in range(4)]
        fence_block = blocks([[loads[0],
                               Instruction(Opcode.FENCE),
                               loads[1]]])[0]
        plain_block = blocks([[loads[0], loads[1]]])[0]
        mem = FakeMemory(latency=50, missed=True)
        fenced = self.make(mem)
        run_core(fenced, [BBLExec(fence_block, (i * 64, i * 64 + 4096))
                          for i in range(30)])
        mem2 = FakeMemory(latency=50, missed=True)
        plain = self.make(mem2)
        run_core(plain, [BBLExec(plain_block, (i * 64, i * 64 + 4096))
                         for i in range(30)])
        assert fenced.cycle > plain.cycle

    def test_stores_execute_in_order(self):
        """TSO: store exec cycles are monotone (verified via the fake
        memory's access log)."""
        instrs = [Instruction(Opcode.STORE, gp(1), gp(2)),
                  Instruction(Opcode.STORE, gp(3), gp(4))]
        block = blocks([instrs])[0]
        mem = FakeMemory(latency=4)
        core = self.make(mem)
        run_core(core, [BBLExec(block, (i * 64, i * 64 + 8192))
                        for i in range(50)])
        store_cycles = [a[3] for a in mem.accesses if a[2]]
        assert store_cycles == sorted(store_cycles)

    def test_apply_delay_shifts_all_clocks(self):
        core = self.make()
        block = alu_chain_block(4, True)
        core.attach(InstrumentedStream(iter([BBLExec(block)])))
        core.run_until(10 ** 9)
        before = core.cycle
        core.apply_delay(1000)
        assert core.cycle == before + 1000

    def test_uop_accounting_includes_fission(self):
        block = blocks([[Instruction(Opcode.STORE, gp(1), gp(2)),
                         Instruction(Opcode.ALU, gp(1), gp(2), gp(3))]])[0]
        core = self.make()
        run_core(core, [BBLExec(block, (0x40,))])
        assert core.instrs == 2
        assert core.uops == 3  # store fissions into 2 µops


class TestMakeCore:
    def test_factory(self):
        assert isinstance(make_core(0, FakeMemory(),
                                    CoreConfig(model="simple")), SimpleCore)
        assert isinstance(make_core(0, FakeMemory(),
                                    CoreConfig(model="ooo")), OOOCore)

    def test_bad_model_rejected_by_config(self):
        with pytest.raises(ValueError):
            CoreConfig(model="vliw")
