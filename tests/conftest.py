"""Shared test fixtures and builders."""

from __future__ import annotations

import pytest

from repro.config import small_test_system
from repro.isa.opcodes import Opcode
from repro.isa.program import BBLExec, Instruction, Program
from repro.isa.registers import gp


def build_program(num_blocks=1, body=None):
    """A tiny program of ``num_blocks`` identical ALU blocks."""
    program = Program("test")
    body = body or [
        Instruction(Opcode.ALU, gp(1), gp(2), gp(1)),
        Instruction(Opcode.ALU, gp(3), gp(4), gp(3)),
        Instruction(Opcode.CMP, gp(1), gp(5)),
        Instruction(Opcode.COND_BRANCH),
    ]
    for _ in range(num_blocks):
        program.add_block(list(body))
    return program


def mem_block(program=None, loads=1, stores=1):
    """A block with ``loads`` LOADs and ``stores`` STOREs."""
    program = program or Program("mem")
    instrs = []
    for i in range(loads):
        instrs.append(Instruction(Opcode.LOAD, gp(14), dst1=gp(2 + i % 8)))
    for i in range(stores):
        instrs.append(Instruction(Opcode.STORE, gp(14), gp(2 + i % 8)))
    return program.add_block(instrs)


def alu_block(program=None, count=4, dependent=False):
    """``count`` ALU instructions, independent or one dependency chain."""
    program = program or Program("alu")
    instrs = []
    for i in range(count):
        reg = gp(2) if dependent else gp(2 + i % 10)
        instrs.append(Instruction(Opcode.ALU, reg, gp(1), dst1=reg))
    return program.add_block(instrs)


def stream_of(block, addr_lists=None, count=None, taken=True):
    """Turn a block into a BBLExec stream."""
    if addr_lists is not None:
        for addrs in addr_lists:
            yield BBLExec(block, tuple(addrs), taken=taken)
    else:
        for _ in range(count or 1):
            yield BBLExec(block, (), taken=taken)


@pytest.fixture
def tiny_config():
    return small_test_system(num_cores=4, core_model="simple")


@pytest.fixture
def tiny_ooo_config():
    return small_test_system(num_cores=2, core_model="ooo")
