"""Tests for the DBT substrate: translation cache + instrumentation."""

import pytest

from repro.dbt.instrumentation import InstrumentedStream, MagicOp
from repro.dbt.translation_cache import TranslationCache
from repro.isa.opcodes import Opcode
from repro.isa.program import BBLExec, Instruction, Program
from repro.isa.registers import gp

from conftest import build_program, stream_of


class TestTranslationCache:
    def test_decode_once(self):
        program = build_program()
        cache = TranslationCache()
        block = program.block(0)
        first = cache.translate(block)
        second = cache.translate(block)
        assert first is second
        assert cache.translations == 1
        assert cache.hits == 1

    def test_programs_are_namespaced(self):
        program = build_program()
        cache = TranslationCache()
        a = cache.translate(program.block(0), program_id=1)
        b = cache.translate(program.block(0), program_id=2)
        assert a is not b
        assert cache.translations == 2

    def test_invalidate_forces_retranslation(self):
        program = build_program()
        cache = TranslationCache()
        block = program.block(0)
        first = cache.translate(block)
        cache.invalidate(block)
        assert cache.invalidations == 1
        second = cache.translate(block)
        assert first is not second

    def test_invalidate_absent_is_noop(self):
        program = build_program()
        cache = TranslationCache()
        cache.invalidate(program.block(0))
        assert cache.invalidations == 0

    def test_invalidate_program(self):
        program = build_program(num_blocks=3)
        cache = TranslationCache()
        for block in program.blocks:
            cache.translate(block, program_id=9)
        cache.translate(program.block(0), program_id=10)
        cache.invalidate_program(9)
        assert len(cache) == 1

    def test_capacity_eviction(self):
        program = build_program(num_blocks=5)
        cache = TranslationCache(capacity=3)
        for block in program.blocks:
            cache.translate(block)
        assert len(cache) == 3
        # Capacity pressure counts as eviction, not invalidation.
        assert cache.evictions == 2
        assert cache.invalidations == 0
        # The oldest translations were evicted.
        assert (0, 0) not in cache and (0, 4) in cache

    def test_lru_hit_refreshes_recency(self):
        program = build_program(num_blocks=4)
        cache = TranslationCache(capacity=3)
        for block in program.blocks[:3]:
            cache.translate(block)
        # Re-touch block 0: it becomes most-recent and must survive the
        # eviction forced by block 3.
        cache.translate(program.block(0))
        cache.translate(program.block(3))
        assert (0, 0) in cache
        assert (0, 1) not in cache
        assert cache.evictions == 1


class TestInstrumentedStream:
    def test_counts_instructions_and_bbls(self):
        program = build_program()
        block = program.block(0)
        stream = InstrumentedStream(stream_of(block, count=10))
        consumed = list(stream)
        assert len(consumed) == 10
        assert stream.bbls_executed == 10
        assert stream.instrs_retired == 10 * block.num_instrs

    def test_yields_decoded_and_exec(self):
        program = build_program()
        block = program.block(0)
        stream = InstrumentedStream(stream_of(block, count=1))
        decoded, bbl_exec = next(stream)
        assert decoded.block is block
        assert bbl_exec.block is block

    def test_shares_translation_cache(self):
        program = build_program()
        block = program.block(0)
        tcache = TranslationCache()
        s1 = InstrumentedStream(stream_of(block, count=3), tcache)
        s2 = InstrumentedStream(stream_of(block, count=3), tcache)
        list(s1)
        list(s2)
        assert tcache.translations == 1
        assert tcache.hits == 5

    def test_fast_forward_skips_without_timing(self):
        program = build_program()
        block = program.block(0)
        stream = InstrumentedStream(stream_of(block, count=100))
        skipped = stream.fast_forward(block.num_instrs * 10)
        assert skipped == block.num_instrs * 10
        remaining = list(stream)
        assert len(remaining) == 90

    def test_fast_forward_past_end(self):
        program = build_program()
        block = program.block(0)
        stream = InstrumentedStream(stream_of(block, count=5))
        skipped = stream.fast_forward(10 ** 9)
        assert skipped == 5 * block.num_instrs
        with pytest.raises(StopIteration):
            next(stream)

    def test_magic_op_dispatch(self):
        program = Program("magic")
        magic = program.add_block([Instruction(Opcode.MAGIC)])
        normal = program.add_block([Instruction(Opcode.ALU, gp(1), gp(2))])
        seen = []

        def gen():
            yield BBLExec(normal)
            yield BBLExec(magic, syscall=MagicOp.ROI_BEGIN)
            yield BBLExec(normal)

        stream = InstrumentedStream(gen(), magic_handler=seen.append)
        list(stream)
        assert len(seen) == 1
        assert seen[0].syscall == MagicOp.ROI_BEGIN
