"""Tests for busy-interval timelines (weave resource occupancy)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.timeline import MultiTimeline, Timeline


class TestTimeline:
    def test_empty_grants_immediately(self):
        assert Timeline().reserve(100, 10) == 100

    def test_zero_duration(self):
        assert Timeline().reserve(100, 0) == 100

    def test_back_to_back_serialize(self):
        t = Timeline()
        assert t.reserve(100, 10) == 100
        assert t.reserve(100, 10) == 110

    def test_hole_filling_for_stragglers(self):
        """The property that fixes the delay ratchet: a request arriving
        'in the past' can use a hole the resource still had."""
        t = Timeline()
        t.reserve(1000, 10)
        assert t.reserve(100, 10) == 100  # past hole still usable

    def test_hole_between_reservations(self):
        t = Timeline()
        t.reserve(100, 10)   # [100, 110)
        t.reserve(200, 10)   # [200, 210)
        assert t.reserve(100, 10) == 110   # fits in the gap
        assert t.reserve(100, 95) == 210   # too big for any gap

    def test_partial_overlap_pushes_forward(self):
        t = Timeline()
        t.reserve(100, 20)   # [100, 120)
        assert t.reserve(110, 5) == 120

    def test_merging_keeps_list_compact(self):
        t = Timeline()
        for i in range(100):
            t.reserve(i * 10, 10)  # all contiguous
        assert len(t) == 1

    def test_busy_at(self):
        t = Timeline()
        t.reserve(100, 10)
        assert t.busy_at(105)
        assert not t.busy_at(99)
        assert not t.busy_at(110)  # end-exclusive

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 5000), st.integers(1, 50)),
                    min_size=1, max_size=80))
    def test_no_double_booking(self, requests):
        """Reservations never overlap and never start early."""
        t = Timeline()
        granted = []
        for earliest, duration in requests:
            start = t.reserve(earliest, duration)
            assert start >= earliest
            granted.append((start, start + duration))
        granted.sort()
        for (s1, e1), (s2, e2) in zip(granted, granted[1:]):
            assert e1 <= s2


class TestMultiTimeline:
    def test_parallel_servers(self):
        mt = MultiTimeline(2)
        assert mt.reserve(100, 10) == 100
        assert mt.reserve(100, 10) == 100  # second server
        assert mt.reserve(100, 10) == 110  # both busy now

    def test_single_server_degenerates(self):
        mt = MultiTimeline(1)
        assert mt.reserve(0, 5) == 0
        assert mt.reserve(0, 5) == 5

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 4),
           st.lists(st.tuples(st.integers(0, 1000), st.integers(1, 20)),
                    min_size=1, max_size=60))
    def test_capacity_respected(self, servers, requests):
        """At any cycle, at most ``servers`` reservations are active."""
        mt = MultiTimeline(servers)
        active = []
        for earliest, duration in requests:
            start = mt.reserve(earliest, duration)
            assert start >= earliest
            active.append((start, start + duration))
        events = sorted([(s, 1) for s, _e in active]
                        + [(e, -1) for _s, e in active])
        load = peak = 0
        for _cycle, delta in events:
            load += delta
            peak = max(peak, load)
        assert peak <= servers
