"""Tests for replacement policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.replacement import (
    LRU,
    RandomRepl,
    TreePLRU,
    make_policy,
)


class TestLRU:
    def test_initial_victim_is_way_zero(self):
        assert LRU(4).victim() == 0

    def test_victim_is_least_recent(self):
        lru = LRU(4)
        for way in (0, 1, 2, 3):
            lru.touch(way)
        assert lru.victim() == 0
        lru.touch(0)
        assert lru.victim() == 1

    def test_touch_reorders(self):
        lru = LRU(3)
        lru.touch(0)
        lru.touch(1)
        lru.touch(2)
        lru.touch(0)  # 1 is now LRU
        assert lru.victim() == 1

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=60))
    def test_victim_matches_reference_model(self, touches):
        """The victim is always the way touched least recently."""
        lru = LRU(8)
        order = list(range(8))
        for way in touches:
            lru.touch(way)
            order.remove(way)
            order.append(way)
        assert lru.victim() == order[0]


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            TreePLRU(6)

    def test_victim_in_range(self):
        plru = TreePLRU(8)
        assert 0 <= plru.victim() < 8

    def test_never_evicts_just_touched(self):
        plru = TreePLRU(8)
        for way in range(8):
            plru.touch(way)
            assert plru.victim() != way

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=40))
    def test_victim_always_valid(self, touches):
        plru = TreePLRU(4)
        for way in touches:
            plru.touch(way)
            victim = plru.victim()
            assert 0 <= victim < 4
            assert victim != way

    def test_two_way_behaves_like_lru(self):
        plru, lru = TreePLRU(2), LRU(2)
        for way in (0, 1, 0, 0, 1):
            plru.touch(way)
            lru.touch(way)
            assert plru.victim() == lru.victim()


class TestRandom:
    def test_deterministic_for_seed(self):
        a = RandomRepl(8, seed=42)
        b = RandomRepl(8, seed=42)
        assert [a.victim() for _ in range(10)] == \
            [b.victim() for _ in range(10)]

    def test_in_range(self):
        policy = RandomRepl(4, seed=1)
        assert all(0 <= policy.victim() < 4 for _ in range(50))


class TestFactory:
    @pytest.mark.parametrize("name,cls", [("lru", LRU),
                                          ("tree", TreePLRU),
                                          ("random", RandomRepl)])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name, 4), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("clock", 4)
