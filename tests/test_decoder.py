"""Tests for instruction->µop decoding: fusion, 4-1-1-1, predecoder."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.decoder import (
    DECODE_WIDTH,
    PREDECODE_BYTES_PER_CYCLE,
    decode_bbl,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import BasicBlock, Instruction
from repro.isa.registers import gp
from repro.isa.uops import UopType


def block_of(opcodes):
    instrs = [Instruction(op, gp(1), gp(2), gp(3)) for op in opcodes]
    return BasicBlock(0, 0x1000, instrs)


class TestFusion:
    def test_cmp_branch_fuses(self):
        decoded = decode_bbl(block_of([Opcode.CMP, Opcode.COND_BRANCH]))
        assert decoded.num_uops == 1
        assert decoded.uops[0].type == UopType.BRANCH
        assert decoded.fused_pairs == 1

    def test_fused_uop_reads_compare_sources(self):
        decoded = decode_bbl(block_of([Opcode.CMP, Opcode.COND_BRANCH]))
        uop = decoded.uops[0]
        assert uop.src1 == gp(1) and uop.src2 == gp(2)

    def test_cmp_without_branch_does_not_fuse(self):
        decoded = decode_bbl(block_of([Opcode.CMP, Opcode.ALU]))
        assert decoded.num_uops == 2
        assert decoded.fused_pairs == 0

    def test_branch_without_cmp_does_not_fuse(self):
        decoded = decode_bbl(block_of([Opcode.ALU, Opcode.COND_BRANCH]))
        assert decoded.num_uops == 2

    def test_multiple_fusions(self):
        decoded = decode_bbl(block_of(
            [Opcode.CMP, Opcode.COND_BRANCH] * 3))
        assert decoded.fused_pairs == 3
        assert decoded.num_uops == 3


class TestBranchMetadata:
    def test_conditional_branch_detected(self):
        decoded = decode_bbl(block_of([Opcode.ALU, Opcode.COND_BRANCH]))
        assert decoded.branch_uop_index == 1
        assert decoded.conditional

    def test_unconditional_jump_not_conditional(self):
        decoded = decode_bbl(block_of([Opcode.ALU, Opcode.JMP]))
        assert decoded.branch_uop_index == 1
        assert not decoded.conditional

    def test_no_branch(self):
        decoded = decode_bbl(block_of([Opcode.ALU, Opcode.ALU]))
        assert decoded.branch_uop_index == -1


class TestFrontendModel:
    def test_single_simple_instr_one_cycle(self):
        decoded = decode_bbl(block_of([Opcode.ALU]))
        assert decoded.decode_cycles == 1

    def test_width_limit(self):
        """More than 4 simple instructions need a second decode group."""
        decoded = decode_bbl(block_of([Opcode.ALU] * 5))
        assert decoded.decode_cycles == 2
        decoded = decode_bbl(block_of([Opcode.ALU] * 4))
        assert decoded.decode_cycles == 1

    def test_complex_instr_must_lead_group(self):
        """A multi-µop instruction mid-group forces a new group
        (the 4-1-1-1 rule)."""
        # ALU then STORE (2 µops): store can't use slot 1.
        decoded = decode_bbl(block_of([Opcode.ALU, Opcode.STORE]))
        assert decoded.decode_cycles == 2
        # STORE leading the group is fine.
        decoded = decode_bbl(block_of([Opcode.STORE, Opcode.ALU]))
        assert decoded.decode_cycles == 1

    def test_predecoder_limits_long_blocks(self):
        # X87 instructions are 7 bytes; 8 of them = 56 bytes > 3 groups.
        decoded = decode_bbl(block_of([Opcode.X87] * 8))
        expected_predec = -(-56 // PREDECODE_BYTES_PER_CYCLE)
        assert decoded.decode_cycles >= expected_predec

    def test_decode_cycles_at_least_one(self):
        decoded = decode_bbl(block_of([Opcode.NOP]))
        assert decoded.decode_cycles == 1


class TestMemSlots:
    def test_slots_match_block_count(self):
        block = block_of([Opcode.LOAD, Opcode.STORE, Opcode.ALU_STORE,
                          Opcode.ALU])
        decoded = decode_bbl(block)
        mem_uops = [u for u in decoded.uops if u.is_mem]
        slots_used = {u.mem_slot for u in mem_uops}
        assert slots_used == set(range(block.num_mem_slots))

    def test_loads_and_stores_counted(self):
        decoded = decode_bbl(block_of([Opcode.LOAD, Opcode.LOAD,
                                       Opcode.STORE]))
        assert decoded.num_loads == 2
        assert decoded.num_stores == 1


_MIXABLE = [Opcode.ALU, Opcode.LOAD, Opcode.STORE, Opcode.LOAD_ALU,
            Opcode.ALU_STORE, Opcode.CMP, Opcode.FPADD, Opcode.MUL,
            Opcode.NOP, Opcode.LEA, Opcode.X87]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(_MIXABLE), min_size=1, max_size=24),
       st.booleans())
def test_decode_properties(opcodes, end_branch):
    """Properties that must hold for every decodable block."""
    if end_branch:
        opcodes = opcodes + [Opcode.COND_BRANCH]
    block = block_of(opcodes)
    decoded = decode_bbl(block)
    # µop slots are in-range and in nondecreasing program order.
    slots = [u.mem_slot for u in decoded.uops if u.is_mem]
    assert slots == sorted(slots)
    assert all(0 <= s < block.num_mem_slots for s in slots)
    # Decode cycles bounded below by both frontend constraints.
    assert decoded.decode_cycles >= max(
        1, -(-block.num_bytes // PREDECODE_BYTES_PER_CYCLE))
    # Every instruction yields at least one µop unless fused away.
    assert decoded.num_uops >= max(1, len(opcodes)
                                   - decoded.fused_pairs * 1
                                   - sum(1 for o in opcodes
                                         if o == Opcode.CMP))
    # Width bound: cannot decode more than DECODE_WIDTH instrs/cycle.
    assert decoded.decode_cycles >= len(block.instructions) / (
        DECODE_WIDTH * 1.0) - 1


def test_decoding_is_deterministic():
    ops = [random.Random(7).choice(_MIXABLE) for _ in range(12)]
    a = decode_bbl(block_of(ops))
    b = decode_bbl(block_of(ops))
    assert [u.type for u in a.uops] == [u.type for u in b.uops]
    assert a.decode_cycles == b.decode_cycles
