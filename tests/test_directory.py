"""The bitmask directories must be a pure representation change.

Two guarantees pin the ISSUE 10 coherence-walk refactor:

* **Lockstep property test** — a reference hierarchy whose directories
  are the pre-refactor line -> set-of-child-Cache / line -> Cache form
  (the seed implementation, inlined below verbatim) is driven through
  the same randomized MESI traffic as the bitmask hierarchy.  Every
  access must return the same latency/miss/invalidation record, and the
  final arrays, counters, and (decoded) directories must match.
* **Legacy-capsule migration** — a capsule rewritten on the fly into
  the pre-refactor on-disk form (object-graph directories, no child
  ids, no routing tables) must resume to byte-identical stats and pass
  ``repro verify`` end-to-end.
"""

import pickle
import random
import zlib

import pytest

from repro.config import small_test_system
from repro.core import ZSim
from repro.memory.cache import Cache, MainMemory
from repro.memory.coherence import MESI
from repro.memory.replacement import LRU
from repro.resilience import Checkpointer, latest, read_checkpoint
from repro.resilience.checkpoint import FORMAT_VERSION, MAGIC
from repro.resilience.integrity import IntegritySentinel
from repro.stats import assert_equivalent
from repro.workloads import mt_workload


# ---------------------------------------------------------------------
# Reference (pre-refactor) directory implementations
# ---------------------------------------------------------------------


class SetDirectoryCache(Cache):
    """The seed's set-of-objects directory, grafted onto today's Cache.

    Every method that reads or writes ``_sharers``/``_owner`` is
    overridden with the pre-refactor body; the array, routing, and
    counter code underneath is the current implementation, so any
    divergence the property test finds is the directory's fault."""

    def acquire_exclusive(self, line, requester, ctx):
        dirty = False
        for child in list(self._sharers.get(line, ())):
            if child is not requester:
                dirty |= child.invalidate_subtree(line, ctx)
                ctx.latency += self.down_latency
                ctx.invalidations += 1
        state = self.array.lookup(line, touch=False)
        if state == MESI.S:
            parent, net = self.parent_select(line)
            ctx.latency += net
            parent.acquire_exclusive(line, self, ctx)
            state = MESI.E
        if dirty and state == MESI.E:
            state = MESI.M
        if state is not None:
            self.array.update_state(line, state)
        self._sharers[line] = {requester}
        self._owner[line] = requester

    def child_evicted(self, line, child, dirty, ctx):
        sharers = self._sharers.get(line)
        if sharers is not None:
            sharers.discard(child)
            if not sharers:
                del self._sharers[line]
        if self._owner.get(line) is child:
            del self._owner[line]
        if dirty:
            state = self.array.lookup(line, touch=False)
            if state is not None:
                self.array.update_state(line, MESI.M)

    def invalidate_subtree(self, line, ctx=None):
        dirty = False
        for child in self._clear_directory(line):
            dirty |= child.invalidate_subtree(line, ctx)
        state = self.array.invalidate(line)
        if state is not None:
            self.invalidations += 1
            dirty |= state == MESI.M
        return dirty

    def downgrade_subtree(self, line, ctx=None):
        dirty = False
        owner = self._owner.pop(line, None)
        if owner is not None:
            dirty |= owner.downgrade_subtree(line, ctx)
        state = self.array.lookup(line, touch=False)
        if state is not None and state != MESI.S:
            self.downgrades += 1
            dirty |= state == MESI.M
            self.array.update_state(line, MESI.S)
        return dirty

    def _grant_to_child(self, line, write, requester, own_state, ctx):
        sharers = self._sharers.setdefault(line, set())
        if write:
            dirty = False
            for child in list(sharers):
                if child is not requester:
                    dirty |= child.invalidate_subtree(line, ctx)
                    ctx.latency += self.down_latency
                    ctx.invalidations += 1
            sharers.clear()
            sharers.add(requester)
            self._owner[line] = requester
            if dirty:
                self.array.update_state(line, MESI.M)
            return MESI.E
        owner = self._owner.get(line)
        if owner is not None and owner is not requester:
            dirty = owner.downgrade_subtree(line, ctx)
            ctx.latency += self.down_latency
            del self._owner[line]
            if dirty:
                self.array.update_state(line, MESI.M)
                own_state = MESI.M
        sharers.add(requester)
        if len(sharers) == 1 and own_state in (MESI.E, MESI.M):
            self._owner[line] = requester
            return MESI.E
        return MESI.S

    def _evict(self, line, state, ctx):
        self.evictions += 1
        if ctx is not None and self.children:
            ctx.shared_evictions += (line,)
        dirty = state == MESI.M
        for child in self._clear_directory(line):
            dirty |= child.invalidate_subtree(line, ctx)
        parent, _net = self.parent_select(line)
        parent.child_evicted(line, self, dirty, ctx)
        if dirty:
            self.writebacks += 1

    def _clear_directory(self, line):
        sharers = self._sharers.pop(line, set())
        self._owner.pop(line, None)
        return sharers

    def sharers_of(self, line):
        return set(self._sharers.get(line, ()))

    def owner_of(self, line):
        return self._owner.get(line)


class SetDirectoryMainMemory(MainMemory):
    """Pre-refactor MainMemory directory (sets of top-level caches)."""

    def handle_access(self, line, write, requester, ctx):
        self.reads += 1
        ctrl = self.controller_of(line)
        src_tile = getattr(requester, "tile", 0)
        ctrl_tile = self.controller_tile(ctrl)
        if self.noc_routes is not None and src_tile != ctrl_tile:
            route = self.noc_routes.get((src_tile, ctrl_tile))
            if route is not None:
                ctx.add_step_at(route, ctx.latency, "NOC")
        ctx.latency += self.network.latency(src_tile, ctrl_tile)
        arrival = ctx.latency
        ctx.latency += self.config.zero_load_latency
        ctx.add_step_at(self.ctrl_weaves[ctrl], arrival, "READ")
        sharers = self._sharers.setdefault(line, set())
        if write:
            for child in list(sharers):
                if child is not requester:
                    child.invalidate_subtree(line, ctx)
                    ctx.invalidations += 1
            sharers.clear()
            sharers.add(requester)
            self._owner[line] = requester
            return MESI.E
        owner = self._owner.get(line)
        if owner is not None and owner is not requester:
            owner.downgrade_subtree(line, ctx)
            del self._owner[line]
        sharers.add(requester)
        if len(sharers) == 1:
            self._owner[line] = requester
            return MESI.E
        return MESI.S

    def acquire_exclusive(self, line, requester, ctx):
        for child in list(self._sharers.get(line, ())):
            if child is not requester:
                child.invalidate_subtree(line, ctx)
                ctx.invalidations += 1
        self._sharers[line] = {requester}
        self._owner[line] = requester

    def child_evicted(self, line, child, dirty, ctx):
        sharers = self._sharers.get(line)
        if sharers is not None:
            sharers.discard(child)
            if not sharers:
                del self._sharers[line]
        if self._owner.get(line) is child:
            del self._owner[line]
        if dirty:
            self.writebacks += 1
            ctrl = self.controller_of(line)
            if ctx is not None:
                ctx.add_wback(self.ctrl_weaves[ctrl])

    def sharers_of(self, line):
        return set(self._sharers.get(line, ()))


# ---------------------------------------------------------------------
# Lockstep property test
# ---------------------------------------------------------------------


def _build_hierarchy(monkeypatch, reference):
    from repro.memory import hierarchy as hmod
    cfg = small_test_system(num_cores=4, core_model="ooo")
    if reference:
        monkeypatch.setattr(hmod, "Cache", SetDirectoryCache)
        monkeypatch.setattr(hmod, "MainMemory", SetDirectoryMainMemory)
    else:
        monkeypatch.setattr(hmod, "Cache", Cache)
        monkeypatch.setattr(hmod, "MainMemory", MainMemory)
    h = hmod.MemoryHierarchy(cfg, build_weave=False)
    # The fast paths read bitmask directories directly; the reference
    # hierarchy cannot serve them, so both run the full walk.
    h.enable_fastpath = False
    h.enable_l2_fastpath = False
    if reference:
        # The flat walk inlines bitmask directory ops; the reference
        # hierarchy must take the recursive (set-of-objects) walk.
        h.enable_flat_walk = False
    return h


def _directory_picture(h):
    """Directory state decoded to names: comparable across the bitmask
    and set-of-objects representations."""
    picture = {}
    for cache in h.all_caches() + [h.mainmem]:
        sharers = {line: tuple(sorted(c.name for c in
                               cache.sharers_of(line)))
                   for line in cache._sharers}
        owners = {}
        for line in list(cache._owner):
            owner = cache.owner_of(line) if isinstance(cache, Cache) \
                else cache._owner[line]
            if not isinstance(owner, (Cache, MainMemory)):
                owner = cache.children[owner]
            owners[line] = owner.name
        picture[cache.name] = (sharers, owners)
    return picture


def _state_picture(h):
    counters = {}
    arrays = {}
    for cache in h.all_caches():
        counters[cache.name] = (cache.accesses, cache.hits, cache.misses,
                                cache.evictions, cache.writebacks,
                                cache.invalidations, cache.downgrades,
                                cache.upgrades)
        arrays[cache.name] = sorted(cache.array.resident_lines())
    counters["mem"] = (h.mainmem.reads, h.mainmem.writebacks)
    return counters, arrays


def _traffic(seed, count, num_cores, line_bits):
    """Randomized MESI traffic: a small hot pool of heavily shared
    lines (upgrades, downgrades, invalidations, ping-pong) plus a
    wider cold spread (fills and evictions across all three levels)."""
    rng = random.Random(seed)
    hot = [rng.randrange(0, 1 << 14) for _ in range(24)]
    accesses = []
    for _ in range(count):
        core = rng.randrange(num_cores)
        if rng.random() < 0.7:
            line = rng.choice(hot)
        else:
            line = rng.randrange(0, 1 << 16)
        write = rng.random() < 0.35
        accesses.append((core, line << line_bits, write))
    return accesses


class TestBitmaskDirectoryLockstep:
    @pytest.mark.parametrize("seed", (1, 7, 2026))
    def test_lockstep_with_reference_directory(self, monkeypatch, seed):
        # Reference first: the module-level class patch must point back
        # at the real classes when bit.check_inclusion() isinstance-
        # checks parents at the end.
        ref = _build_hierarchy(monkeypatch, reference=True)
        bit = _build_hierarchy(monkeypatch, reference=False)
        assert type(ref.l1d[0]) is SetDirectoryCache
        assert type(ref.mainmem) is SetDirectoryMainMemory
        for i, (core, addr, write) in enumerate(
                _traffic(seed, 4000, 4, bit.line_bits)):
            got = bit.access(core, addr, write)
            want = ref.access(core, addr, write)
            record = (got.latency, got.missed_levels, got.hit_level,
                      got.invalidations, got.shared_evictions)
            expect = (want.latency, want.missed_levels, want.hit_level,
                      want.invalidations, want.shared_evictions)
            assert record == expect, \
                "access %d diverged: %r vs %r" % (i, record, expect)
        assert _state_picture(bit) == _state_picture(ref)
        assert _directory_picture(bit) == _directory_picture(ref)
        assert bit.check_inclusion() == [] and bit.check_coherence() == []

    def test_directory_decodes_to_reference_after_upgrade_storm(
            self, monkeypatch):
        """Write-heavy traffic on one line: the pure ping-pong case."""
        ref = _build_hierarchy(monkeypatch, reference=True)
        bit = _build_hierarchy(monkeypatch, reference=False)
        addr = 0x40 << bit.line_bits
        for i in range(200):
            core = i % 4
            write = i % 3 != 0
            got = bit.access(core, addr, write)
            want = ref.access(core, addr, write)
            assert (got.latency, got.invalidations) == \
                (want.latency, want.invalidations)
        assert _directory_picture(bit) == _directory_picture(ref)


# ---------------------------------------------------------------------
# Legacy-capsule migration, end to end
# ---------------------------------------------------------------------


def _write_legacy_capsule(src_path, dst_path):
    """Rewrite a capsule into the pre-refactor on-disk form: directory
    entries as object graphs, no child ids, no dir odometer, and the
    hierarchy stripped of the fast-path/slab fields this PR and the
    data-plane one added."""
    capsule = read_checkpoint(src_path)
    sim = capsule["sim"]
    hier = sim.hierarchy
    for cache in hier.all_caches():
        children = cache.children
        cache._sharers = {
            line: {children[i] for i in range(mask.bit_length())
                   if mask >> i & 1}
            for line, mask in cache._sharers.items()}
        cache._owner = {line: children[i]
                        for line, i in cache._owner.items()}
        del cache.__dict__["child_id"]
        del cache.__dict__["dir_ops"]
    mem = hier.mainmem
    mem._sharers = {
        line: {mem.children[i] for i in range(mask.bit_length())
               if mask >> i & 1}
        for line, mask in mem._sharers.items()}
    mem._owner = {line: mem.children[i]
                  for line, i in mem._owner.items()}
    del mem.__dict__["dir_ops"]
    for attr in ("_num_ctrls", "_zero_load", "_ctrl_tiles",
                 "_net_to_ctrl"):
        mem.__dict__.pop(attr, None)
    for attr in ("enable_l2_fastpath", "l2_fastpath_hits"):
        del hier.__dict__[attr]
    for attr in ("enable_flat_walk", "_walk_caches", "_walk_idx"):
        hier.__dict__.pop(attr, None)
    # Pre-refactor LRU kept a recency list; rewrite stamps back.
    for cache in hier.all_caches():
        for repl in cache.array._repl:
            if isinstance(repl, LRU):
                stamp = repl.__dict__.pop("_stamp")
                repl.__dict__.pop("_clock")
                repl.__dict__["_order"] = sorted(
                    range(len(stamp)), key=stamp.__getitem__)
    capsule["sim"] = pickle.dumps(sim, protocol=pickle.HIGHEST_PROTOCOL)
    body = pickle.dumps(capsule, protocol=pickle.HIGHEST_PROTOCOL)
    header = b"%s %d %08x\n" % (MAGIC, FORMAT_VERSION,
                                zlib.crc32(body) & 0xFFFFFFFF)
    with open(dst_path, "wb") as fh:
        fh.write(header)
        fh.write(body)


class TestLegacyCapsuleMigration:
    def _straight_and_capsule(self, tmp_path):
        def threads():
            wl = mt_workload("canneal", scale=1 / 64, num_threads=4)
            return wl.make_threads(target_instrs=12_000, num_threads=4)

        cfg = small_test_system(num_cores=4, core_model="ooo")
        straight = ZSim(cfg, threads=threads(), contention_model="weave")
        straight.integrity = IntegritySentinel(audit_every=1)
        want = straight.run().stats().to_dict()

        cfg = small_test_system(num_cores=4, core_model="ooo")
        partial = ZSim(cfg, threads=threads(), contention_model="weave")
        partial.integrity = IntegritySentinel(audit_every=1)
        partial.checkpointer = Checkpointer(
            str(tmp_path / "new"), every=1,
            meta={"workload": "canneal", "scale": 1 / 64,
                  "instrs": 12_000, "threads": 4})
        partial.run(max_intervals=3)
        return want, latest(str(tmp_path / "new")), threads

    def test_legacy_capsule_resumes_byte_identical(self, tmp_path):
        want, new_path, threads = self._straight_and_capsule(tmp_path)
        legacy_dir = tmp_path / "legacy"
        legacy_dir.mkdir()
        legacy_path = str(legacy_dir / "ckpt-deadbeef-00000003.pkl")
        _write_legacy_capsule(new_path, legacy_path)

        capsule = read_checkpoint(legacy_path)
        hier = capsule["sim"].hierarchy
        # Migration happened during unpickling: bitmasks, ids, tables.
        for cache in hier.all_caches():
            assert all(isinstance(m, int)
                       for m in cache._sharers.values())
            assert all(isinstance(o, int) for o in cache._owner.values())
            assert cache._parent_banks is not None
        assert all(isinstance(m, int)
                   for m in hier.mainmem._sharers.values())
        assert hier.enable_l2_fastpath == hier.enable_fastpath
        assert hier.l2_fastpath_hits == 0
        assert hier.enable_flat_walk
        assert hier.mainmem._net_to_ctrl is not None
        l1_repl = hier.l1d[0].array._repl[0]
        assert isinstance(l1_repl, LRU) and hasattr(l1_repl, "_stamp")

        resumed = ZSim.resume(capsule, threads())
        got = resumed.run().stats().to_dict()
        assert_equivalent(got, want, ignore=("host",),
                          context="legacy capsule resume vs straight")

    def test_repro_verify_certifies_legacy_capsule(self, tmp_path,
                                                   capsys):
        """Both kept capsules rewritten to the legacy form: ``repro
        verify`` re-derives the deep digests (the named-directory form
        must digest identically post-migration) and replays the span
        between them, re-deriving the fingerprint chain."""
        from repro.cli import main
        from repro.resilience.checkpoint import checkpoints
        _, new_path, _ = self._straight_and_capsule(tmp_path)
        legacy_dir = tmp_path / "legacy"
        legacy_dir.mkdir()
        for interval, path in checkpoints(str(tmp_path / "new")):
            _write_legacy_capsule(
                path,
                str(legacy_dir / ("ckpt-deadbeef-%08d.pkl" % interval)))
        assert main(["verify", str(legacy_dir)]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out
        assert "replayed 1 span(s)" in out
