"""Tests for timing and system-view virtualization."""

import pytest

from repro.config import tiled_chip, westmere
from repro.virt.sysview import SystemView
from repro.virt.timing import VirtualClock


class TestVirtualClock:
    def test_rdtsc_is_cycle_count(self):
        clock = VirtualClock(2000)
        assert clock.rdtsc(12345) == 12345

    def test_ns_round_trip(self):
        clock = VirtualClock(2000)  # 2 GHz: 1 cycle = 0.5ns
        assert clock.cycles_to_ns(2000) == pytest.approx(1000.0)
        assert clock.ns_to_cycles(1000.0) == 2000

    def test_gettime_monotone(self):
        clock = VirtualClock(2270)
        times = [clock.gettime_ns(c) for c in (0, 10, 1000, 10 ** 7)]
        assert times == sorted(times)

    def test_timeout_in_simulated_time(self):
        """The paper's point: timeouts must fire on *simulated* time."""
        clock = VirtualClock(1000)  # 1 GHz: 1 cycle = 1ns
        assert not clock.timeout_expired(0, 500, timeout_ns=1000)
        assert clock.timeout_expired(0, 1000, timeout_ns=1000)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            VirtualClock(0)


class TestSystemView:
    def test_cpu_count_is_simulated(self):
        view = SystemView(tiled_chip(num_tiles=4))
        assert view.cpu_count() == 64

    def test_cpuid_reflects_config(self):
        cfg = westmere(num_cores=6)
        info = SystemView(cfg).cpuid()
        assert info["num_cores"] == 6
        assert info["l3_kb"] == 12 * 1024
        assert info["freq_mhz"] == 2270

    def test_proc_cpuinfo_lists_every_core(self):
        view = SystemView(westmere(num_cores=6))
        text = view.proc_cpuinfo()
        assert text.count("processor\t:") == 6
        assert "cpu cores\t: 6" in text

    def test_proc_tree_redirection(self):
        view = SystemView(westmere(num_cores=6))
        assert view.open_path("/sys/devices/system/cpu/online") == "0-5\n"
        assert view.open_path("/proc/cpuinfo") is not None
        assert view.open_path("/etc/passwd") is None  # host fallthrough

    def test_getcpu(self):
        view = SystemView(westmere())

        class FakeThread:
            core = 3
        assert view.getcpu(FakeThread()) == 3
        FakeThread.core = None
        assert view.getcpu(FakeThread()) == -1

    def test_self_tuning_application_sees_simulated_cores(self):
        """The OpenMP/JVM scenario: sizing a pool from the system view
        yields the simulated width, not the host's."""
        for tiles in (1, 4):
            cfg = tiled_chip(num_tiles=tiles)
            pool = SystemView(cfg).cpu_count()
            assert pool == cfg.num_cores


class TestReadSysFile:
    def test_virtualized_proc_read_via_syscall(self):
        """A workload reads /proc/cpuinfo through the syscall layer and
        sees the *simulated* machine (end-to-end system virtualization:
        the paper's self-tuning OpenMP/JVM scenario)."""
        from repro.core import ZSim
        from repro.config import small_test_system
        from repro.dbt.instrumentation import InstrumentedStream
        from repro.isa.opcodes import Opcode
        from repro.isa.program import BBLExec, Instruction, Program
        from repro.virt.process import SimThread
        from repro.virt.syscalls import ReadSysFile

        program = Program("tuner")
        sys_block = program.add_block([Instruction(Opcode.SYSCALL)])
        work = program.add_block(
            [Instruction(Opcode.NOP)] * 4)
        seen = []

        def stream():
            yield BBLExec(sys_block, (), syscall=ReadSysFile(
                "/sys/devices/system/cpu/online", seen.append))
            for _ in range(5):
                yield BBLExec(work)

        cfg = small_test_system(num_cores=4, core_model="simple")
        sim = ZSim(cfg, threads=[SimThread(InstrumentedStream(stream()))])
        sim.run()
        assert seen == ["0-3\n"]

    def test_non_virtualized_path_falls_through(self):
        from repro.virt.scheduler import Scheduler, SyscallResult
        from repro.virt.process import SimThread
        from repro.virt.sysview import SystemView
        from repro.virt.syscalls import ReadSysFile
        from repro.config import westmere

        sched = Scheduler(1, system_view=SystemView(westmere()))
        thread = SimThread(iter(()))
        sched.add_thread(thread)
        seen = []
        result = sched.handle_syscall(
            thread, ReadSysFile("/etc/passwd", seen.append), 0)
        assert result == SyscallResult.CONTINUE
        assert seen == [None]  # host fallthrough, not virtualized


class TestCpuTimeAccounting:
    def test_thread_cpu_cycles_accumulate(self):
        """Per-thread CPU time (for multiprogrammed studies) is credited
        on deschedule."""
        from repro.core import ZSim
        from repro.config import small_test_system
        from repro.workloads.base import KernelSpec, Workload

        cfg = small_test_system(num_cores=2, core_model="simple")
        wl = Workload(KernelSpec(name="cpu", barrier_iters=0, seed=3), 4)
        sim = ZSim(cfg, wl.make_threads(target_instrs=20_000,
                                        num_threads=4))
        res = sim.run()
        times = [t.cpu_cycles for t in sim.scheduler.threads]
        assert all(t > 0 for t in times)
        # CPU time is bounded by wall (cycle) time x cores.
        assert sum(times) <= res.cycles * cfg.num_cores * 1.05
