"""Tests for ROI magic ops, sampling, tracing, NoC weave, pipeline
invariants, and the CLI."""

import dataclasses

import pytest

from repro.config import small_test_system, tiled_chip, westmere
from repro.core import ZSim
from repro.cli import main as cli_main
from repro.cpu import OOOCore
from repro.config.system import CoreConfig
from repro.dbt.instrumentation import InstrumentedStream
from repro.dbt.tracing import TraceReader, record_trace
from repro.harness.roi import RoiTracker, roi_stream
from repro.harness.sampling import sampled_ipc
from repro.isa.opcodes import Opcode
from repro.isa.program import BBLExec, Instruction, Program
from repro.isa.registers import gp
from repro.memory.noc_weave import NocFabric
from repro.memory.network import Network
from repro.config.system import NetworkConfig
from repro.virt.process import SimThread
from repro.virt.syscalls import Barrier, Lock, Spawn, Unlock
from repro.workloads.base import KernelProgram, KernelSpec, Workload
from repro.workloads.base import kernel_stream


class TestRoi:
    def make_sim(self, work_iters=200, warmup_iters=200):
        program = Program("roi-wl")
        work = program.add_block(
            [Instruction(Opcode.ALU, gp(1), gp(2), gp(1))] * 8)

        def body(n):
            for _ in range(n):
                yield BBLExec(work)

        cfg = small_test_system(num_cores=1, core_model="simple")
        stream = roi_stream(body(work_iters),
                            warmup_stream=body(warmup_iters))
        sim = ZSim(cfg, threads=[SimThread(InstrumentedStream(stream))])
        tracker = RoiTracker(sim).attach()
        return sim, tracker, work.num_instrs

    def test_roi_excludes_warmup(self):
        sim, tracker, block_instrs = self.make_sim(work_iters=200,
                                                   warmup_iters=300)
        res = sim.run()
        assert res.instrs > tracker.roi_instrs
        # ROI contains the work iterations plus the closing magic op.
        assert abs(tracker.roi_instrs - 200 * block_instrs) <= \
            2 * block_instrs
        assert 0 < tracker.roi_cycles < res.cycles

    def test_roi_ipc_positive(self):
        sim, tracker, _ = self.make_sim()
        sim.run()
        assert tracker.roi_ipc > 0.5

    def test_no_markers_no_roi(self):
        program = Program("no-roi")
        work = program.add_block([Instruction(Opcode.NOP)])
        cfg = small_test_system(num_cores=1, core_model="simple")
        sim = ZSim(cfg, threads=[SimThread(InstrumentedStream(
            iter([BBLExec(work)])))])
        tracker = RoiTracker(sim).attach()
        sim.run()
        assert tracker.roi_instrs == 0


class TestSampling:
    def test_sampled_ipc_close_to_full(self):
        cfg = westmere(num_cores=1, core_model="ooo")
        spec = KernelSpec(name="smpl", footprint_kb=64, mem_ratio=0.25,
                          hot_fraction=0.8, barrier_iters=0, seed=6)

        def make_thread():
            wl = Workload(spec, 1)
            return wl.make_threads(target_instrs=400_000)[0]

        result = sampled_ipc(cfg, make_thread, num_samples=6,
                             ff_instrs=30_000, warm_instrs=2_000,
                             measure_instrs=4_000)
        assert len(result.samples) >= 4
        # Compare against a (shorter) full detailed run.
        wl = Workload(spec, 1)
        sim = ZSim(cfg, threads=wl.make_threads(target_instrs=80_000))
        full = sim.run()
        assert abs(result.ipc_estimate - full.ipc) < 0.3 * full.ipc

    def test_sample_result_ci(self):
        cfg = small_test_system(num_cores=1, core_model="simple")
        spec = KernelSpec(name="smpl2", barrier_iters=0, seed=7)

        def make_thread():
            return Workload(spec, 1).make_threads(
                target_instrs=200_000)[0]
        result = sampled_ipc(cfg, make_thread, num_samples=5)
        assert result.relative_ci < 1.0


class TestTracing:
    def test_record_and_replay_identical(self, tmp_path):
        spec = KernelSpec(name="trc", barrier_iters=50, lock_iters=25,
                          shared_fraction=0.3, seed=9)
        kprog = KernelProgram(spec)
        path = tmp_path / "trace.jsonl"
        count = record_trace(
            kernel_stream(kprog, 0, 2, target_instrs=5_000), path,
            kprog.program)
        reader = TraceReader(path)
        assert len(reader) == count
        original = list(kernel_stream(kprog, 0, 2, target_instrs=5_000))
        replayed = list(reader)
        assert len(replayed) == len(original)
        for orig, rep in zip(original, replayed):
            assert orig.block.bbl_id == rep.block.bbl_id
            assert orig.addrs == rep.addrs
            assert orig.taken == rep.taken
            assert type(orig.syscall) == type(rep.syscall)  # noqa: E721

    def test_replayed_trace_simulates_identically(self, tmp_path):
        spec = KernelSpec(name="trc2", barrier_iters=0, seed=9)
        kprog = KernelProgram(spec)
        path = tmp_path / "trace.jsonl"
        record_trace(kernel_stream(kprog, 0, 1, target_instrs=8_000),
                     path, kprog.program)

        def run(stream):
            cfg = small_test_system(num_cores=1, core_model="ooo")
            sim = ZSim(cfg, threads=[
                SimThread(InstrumentedStream(stream))])
            return sim.run().cycles
        live = run(kernel_stream(kprog, 0, 1, target_instrs=8_000))
        replay = run(iter(TraceReader(path)))
        assert live == replay

    def test_syscall_round_trip(self, tmp_path):
        program = Program("sys-trace")
        sblock = program.add_block([Instruction(Opcode.SYSCALL)])
        execs = [BBLExec(sblock, (), syscall=Barrier(("b", 1), 2)),
                 BBLExec(sblock, (), syscall=Lock("m")),
                 BBLExec(sblock, (), syscall=Unlock("m"))]
        path = tmp_path / "sys.jsonl"
        record_trace(iter(execs), path, program)
        replayed = list(TraceReader(path))
        assert isinstance(replayed[0].syscall, Barrier)
        assert replayed[0].syscall.key == ("b", 1)
        assert replayed[0].syscall.parties == 2
        assert isinstance(replayed[1].syscall, Lock)

    def test_spawn_rejected(self, tmp_path):
        program = Program("spawn-trace")
        sblock = program.add_block([Instruction(Opcode.SYSCALL)])
        execs = [BBLExec(sblock, (), syscall=Spawn(lambda: None))]
        with pytest.raises(ValueError, match="cannot be traced"):
            record_trace(iter(execs), tmp_path / "x.jsonl", program)


class TestNocWeave:
    def fabric(self, topology, tiles):
        network = Network(NetworkConfig(topology=topology), tiles)
        return NocFabric(network, tiles)

    def test_ring_route_shortest_direction(self):
        fabric = self.fabric("ring", 8)
        assert list(fabric.route(0, 2)) == [(0, 1), (1, 2)]
        assert list(fabric.route(0, 7)) == [(0, 7)]
        assert list(fabric.route(6, 1)) == [(6, 7), (7, 0), (0, 1)]

    def test_mesh_route_xy(self):
        fabric = self.fabric("mesh", 16)  # 4x4
        hops = list(fabric.route(0, 5))   # (0,0) -> (1,1)
        assert hops == [(0, 1), (1, 5)]

    def test_mesh_partial_row_fallback(self):
        fabric = self.fabric("mesh", 6)  # 3 wide, last row partial
        for src in range(6):
            for dst in range(6):
                hops = list(fabric.route(src, dst))
                # Route stays within existing tiles and is connected.
                current = src
                for a, b in hops:
                    assert a == current
                    assert 0 <= b < 6
                    current = b
                if src != dst:
                    assert current == dst

    def test_link_contention_delays(self):
        fabric = self.fabric("ring", 4)
        first = fabric.traverse(100, 0, 2)
        second = fabric.traverse(100, 0, 2)  # same links
        assert second > first
        assert fabric.link_stall_cycles > 0

    def test_disjoint_routes_no_contention(self):
        fabric = self.fabric("ring", 8)
        fabric.traverse(100, 0, 1)
        fabric.traverse(100, 4, 5)
        assert fabric.link_stall_cycles == 0

    def test_end_to_end_with_noc_weave(self):
        cfg = tiled_chip(num_tiles=4, core_model="simple",
                         cores_per_tile=2)
        cfg = dataclasses.replace(cfg, network=dataclasses.replace(
            cfg.network, weave_model=True))
        from repro.workloads import mt_workload
        wl = mt_workload("fft", scale=1 / 64, num_threads=8)
        sim = ZSim(cfg, wl.make_threads(target_instrs=20_000,
                                        num_threads=8))
        res = sim.run()
        noc_events = sum(c.events_executed
                         for c in sim.hierarchy.weave_components
                         if c.name.startswith("noc"))
        assert noc_events > 0
        assert res.cycles > 0


class TestPipelineInvariants:
    def test_uop_stage_ordering(self):
        """dispatch <= exec < done <= retire for every µop, and retire
        cycles are monotone (in-order retirement)."""
        from repro.workloads.base import KernelProgram

        kprog = KernelProgram(KernelSpec(name="pipe", seed=4,
                                         branch_rand=0.2))
        core = OOOCore(0, _FakeMem(), CoreConfig(model="ooo"))
        core.debug_trace = []
        core.attach(InstrumentedStream(
            kernel_stream(kprog, target_instrs=5_000)))
        core.run_until(10 ** 9)
        assert len(core.debug_trace) > 300
        last_retire = 0
        for dispatch, exec_cycle, done, retire in core.debug_trace:
            assert dispatch <= exec_cycle
            assert exec_cycle < done or done == exec_cycle  # mem fwd
            assert done <= retire or retire == done + 1 or retire >= done
            assert retire >= last_retire
            last_retire = retire


class _FakeMem:
    def access(self, core_id, addr, write, cycle=0, ifetch=False):
        from repro.memory.access import AccessContext, AccessResult
        ctx = AccessContext(core_id, addr >> 6, write, ifetch)
        ctx.latency = 4
        ctx.record_hit("l1d" if not ifetch else "l1i")
        return AccessResult(ctx)


class TestCli:
    def test_list_workloads(self, capsys):
        assert cli_main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "blackscholes" in out

    def test_table1(self, capsys):
        assert cli_main(["table1"]) == 0
        assert "Bound-weave" in capsys.readouterr().out

    def test_run_preset(self, capsys):
        assert cli_main(["run", "--config", "test", "--workload",
                         "namd", "--instrs", "5000"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out

    def test_run_with_stats_out(self, tmp_path, capsys):
        stats = tmp_path / "stats.json"
        assert cli_main(["run", "--config", "test", "--workload",
                         "water", "--instrs", "5000", "--threads", "2",
                         "--stats-out", str(stats)]) == 0
        import json
        data = json.loads(stats.read_text())
        assert data["instrs"] > 0

    def test_run_json_config(self, tmp_path, capsys):
        from repro.config.loader import save_config
        path = tmp_path / "chip.json"
        save_config(small_test_system(num_cores=2), path)
        assert cli_main(["run", "--config", str(path), "--workload",
                         "namd", "--instrs", "4000"]) == 0

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "--config", "test", "--workload", "nope"])

    def test_validate(self, capsys):
        assert cli_main(["validate", "--config", "test", "--workload",
                         "namd", "--instrs", "5000",
                         "--core-model", "ooo"]) == 0
        assert "perf_error" in capsys.readouterr().out


class TestCliExperiment:
    def test_fig5_limited(self, capsys):
        assert cli_main(["experiment", "fig5", "--limit", "2",
                         "--instrs", "6000"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "perf err" in out

    def test_mt_validation_limited(self, capsys):
        assert cli_main(["experiment", "mt-validation", "--limit", "1",
                         "--instrs", "8000", "--scale", "0.02"]) == 0
        assert "Figure 6 (left)" in capsys.readouterr().out
