"""Cross-subsystem integration tests: tiled chips, multiprocess runs,
end-to-end invariants."""

import dataclasses


from repro.config import tiled_chip
from repro.core import ZSim
from repro.dbt.instrumentation import InstrumentedStream
from repro.isa.opcodes import Opcode
from repro.isa.program import BBLExec, Instruction, Program
from repro.isa.registers import gp
from repro.virt.process import SimProcess, SimThread
from repro.virt.syscalls import Spawn
from repro.workloads import mt_workload


def small_tiled(num_tiles=2, cores_per_tile=2, core_model="simple"):
    cfg = tiled_chip(num_tiles=num_tiles, core_model=core_model,
                     cores_per_tile=cores_per_tile)
    # Shrink caches so contention and evictions appear quickly.
    cfg.l2 = dataclasses.replace(cfg.l2, size_kb=32)
    cfg.l3 = dataclasses.replace(cfg.l3, size_kb=128, banks=num_tiles)
    return cfg.validate()


class TestTiledChip:
    def test_multi_domain_weave_with_crossings(self):
        cfg = small_tiled()
        wl = mt_workload("canneal", scale=1 / 64,
                         num_threads=cfg.num_cores)
        sim = ZSim(cfg, wl.make_threads(target_instrs=30_000,
                                        num_threads=cfg.num_cores))
        res = sim.run()
        assert len(sim.weave.domains) == 2
        assert res.weave_stats.crossings > 0
        assert res.weave_stats.events > 0

    def test_invariants_after_tiled_run(self):
        cfg = small_tiled()
        wl = mt_workload("radix", scale=1 / 64,
                         num_threads=cfg.num_cores)
        sim = ZSim(cfg, wl.make_threads(target_instrs=30_000,
                                        num_threads=cfg.num_cores))
        sim.run()
        assert sim.hierarchy.check_coherence() == []
        assert sim.hierarchy.check_inclusion() == []

    def test_shared_l2_per_tile_sees_traffic(self):
        cfg = small_tiled()
        wl = mt_workload("fft", scale=1 / 64, num_threads=cfg.num_cores)
        sim = ZSim(cfg, wl.make_threads(target_instrs=20_000,
                                        num_threads=cfg.num_cores))
        sim.run()
        for l2 in sim.hierarchy.l2s:
            assert l2.accesses > 0

    def test_domain_events_spread(self):
        cfg = small_tiled(num_tiles=4, cores_per_tile=2)
        wl = mt_workload("swim_m", scale=1 / 64,
                         num_threads=cfg.num_cores)
        sim = ZSim(cfg, wl.make_threads(target_instrs=40_000,
                                        num_threads=cfg.num_cores))
        sim.run()
        executed = [d.domain_id for d in sim.weave.domains
                    if d.events_executed >= 0]
        assert len(sim.weave.domains) == 4


class TestMultiprocess:
    def test_spawned_process_threads_run(self):
        """A parent 'process' spawns a child (fork/exec capture); the
        child's thread runs to completion on the simulated chip."""
        cfg = small_tiled()
        program = Program("spawner")
        work = program.add_block([
            Instruction(Opcode.ALU, gp(1), gp(2), gp(1))] * 8)
        sys_block = program.add_block([Instruction(Opcode.SYSCALL)])

        parent_proc = SimProcess("bash")
        child_proc = SimProcess("java", parent=parent_proc)
        done = []

        def child_stream():
            for _ in range(50):
                yield BBLExec(work)
            done.append("child")

        def make_child():
            return SimThread(InstrumentedStream(child_stream()),
                             name="child", process=child_proc)

        def parent_stream():
            for _ in range(10):
                yield BBLExec(work)
            yield BBLExec(sys_block, syscall=Spawn(make_child))
            for _ in range(10):
                yield BBLExec(work)
            done.append("parent")

        parent = SimThread(InstrumentedStream(parent_stream()),
                           name="parent", process=parent_proc)
        sim = ZSim(cfg, threads=[parent])
        res = sim.run()
        assert sorted(done) == ["child", "parent"]
        # 70 work blocks of 8 instrs + the 1-instruction syscall block.
        assert res.instrs == 70 * 8 + 1
        assert [p.name for p in parent_proc.tree()] == ["bash", "java"]


class TestHeterogeneousCores:
    def test_mixed_models_by_construction(self):
        """Heterogeneity: build two simulators sharing a workload, one
        OOO, one simple, and confirm the OOO one is faster in simulated
        time (the paper's heterogeneous-system support is per-core; our
        config is chip-wide, so heterogeneity is exercised at the model
        level)."""
        wl = mt_workload("water", scale=1 / 64, num_threads=4)
        results = {}
        for model in ("simple", "ooo"):
            cfg = small_tiled(core_model=model)
            sim = ZSim(cfg, wl.make_threads(target_instrs=20_000,
                                            num_threads=4))
            results[model] = sim.run().cycles
        assert results["ooo"] < results["simple"]
