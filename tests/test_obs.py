"""Tests for the observability layer: histograms, tracer, metrics,
telemetry threaded end-to-end through the simulator, and the CLI flags.
"""

import json

import pytest

from repro.config import small_test_system
from repro.core.simulator import ZSim
from repro.obs import (
    Log2Histogram,
    MetricsRegistry,
    Telemetry,
    Tracer,
    configure_logging,
    get_logger,
)
from repro.obs.histogram import bucket_bounds, bucket_label
from repro.workloads.base import KernelSpec, Workload

VALID_PHASES = {"X", "i", "C", "M", "B", "E"}


def workload(threads=4):
    spec = KernelSpec(name="wl", footprint_kb=64, mem_ratio=0.3,
                      pattern="random", shared_fraction=0.2, shared_kb=64,
                      barrier_iters=100, seed=7)
    return Workload(spec, num_threads=threads)


def run_sim(telemetry=None, instrs=15_000, contention_model="weave"):
    config = small_test_system(num_cores=4, core_model="simple")
    threads = workload().make_threads(target_instrs=instrs)
    sim = ZSim(config, threads=threads, contention_model=contention_model,
               telemetry=telemetry)
    return sim.run(), sim


def assert_valid_chrome_trace(doc):
    """Schema-check a Chrome trace-event JSON document."""
    assert isinstance(doc, dict)
    events = doc["traceEvents"]
    assert events, "trace must contain events"
    for event in events:
        assert event["ph"] in VALID_PHASES
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert "name" in event
        if event["ph"] != "M":
            assert isinstance(event["ts"], (int, float))
            assert event["ts"] >= 0.0
        if event["ph"] == "X":
            assert isinstance(event["dur"], (int, float))
            assert event["dur"] >= 0.0


class TestLog2Histogram:
    def test_zero_goes_to_bucket_zero(self):
        h = Log2Histogram()
        h.record(0)
        assert h.count == 1 and h.total == 0
        assert list(h.buckets()) == [(0, 0, 1)]
        assert h.to_dict()["buckets"] == {"0": 1}

    def test_one_is_its_own_bucket(self):
        h = Log2Histogram()
        h.record(1)
        assert list(h.buckets()) == [(1, 1, 1)]
        assert h.to_dict()["buckets"] == {"1": 1}

    def test_power_of_two_boundaries(self):
        h = Log2Histogram()
        for v in (2, 3, 4, 7, 8):
            h.record(v)
        assert list(h.buckets()) == [(2, 3, 2), (4, 7, 2), (8, 15, 1)]

    def test_huge_value_clamps_to_top_bucket(self):
        h = Log2Histogram()
        h.record(1 << 200)
        assert h.count == 1
        assert h.max == 1 << 200
        (lo, _hi, n), = h.buckets()
        assert n == 1 and lo == 1 << 62
        assert bucket_label(63).endswith("+")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Log2Histogram().record(-1)

    def test_mean_min_max(self):
        h = Log2Histogram()
        for v in (10, 20, 30):
            h.record(v)
        assert h.mean == pytest.approx(20.0)
        assert (h.min, h.max) == (10, 30)

    def test_weighted_record(self):
        h = Log2Histogram()
        h.record(4, n=5)
        assert h.count == 5 and h.total == 20

    def test_percentile(self):
        h = Log2Histogram()
        for _ in range(99):
            h.record(1)
        h.record(1000)
        assert h.percentile(50) == 1
        assert h.percentile(100) == bucket_bounds(1000 .bit_length())[1]
        assert Log2Histogram().percentile(50) is None
        with pytest.raises(ValueError):
            h.percentile(0)

    def test_merge(self):
        a, b = Log2Histogram(), Log2Histogram()
        a.record(2)
        b.record(100)
        a.merge(b)
        assert a.count == 2
        assert (a.min, a.max) == (2, 100)
        assert sum(n for _lo, _hi, n in a.buckets()) == 2

    def test_to_dict_json_safe(self):
        h = Log2Histogram("lat")
        h.record(5)
        round_tripped = json.loads(json.dumps(h.to_dict()))
        assert round_tripped["count"] == 1
        assert round_tripped["buckets"] == {"4-7": 1}


class TestTracer:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("work", "test", tid=5, args={"k": 1}):
            pass
        (event,) = tracer.events
        assert event["ph"] == "X" and event["tid"] == 5
        assert event["dur"] >= 0
        assert event["args"] == {"k": 1}

    def test_chrome_export_is_schema_valid(self):
        tracer = Tracer()
        tracer.name_track(7, "lane7")
        with tracer.span("a", "cat", tid=7):
            tracer.instant("marker", "cat", tid=7)
        doc = json.loads(tracer.to_json())
        assert_valid_chrome_trace(doc)
        names = [e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        assert "lane7" in names

    def test_max_events_bounds_memory(self):
        tracer = Tracer(max_events=2)
        for _ in range(5):
            tracer.instant("x", "c")
        assert len(tracer.events) == 2
        assert tracer.dropped == 3
        assert tracer.to_chrome()["otherData"]["dropped_events"] == 3

    def test_text_timeline_mentions_lanes(self):
        tracer = Tracer()
        tracer.name_track(3, "mylane")
        with tracer.span("heavy", "c", tid=3):
            pass
        text = tracer.text_timeline()
        assert "mylane" in text and "heavy" in text


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.gauge("g", 1.5)
        assert reg.counter("a") == 5
        assert reg.counter("missing") == 0
        assert reg.to_dict()["gauges"]["g"] == 1.5

    def test_histogram_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.histogram("h") is reg.histogram("h")

    def test_json_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.histogram("h").record(9)
        reg.sample_interval(1, cycle=100, instrs=50)
        doc = json.loads(reg.to_json())
        assert doc["counters"]["c"] == 2
        assert doc["histograms"]["h"]["count"] == 1
        assert doc["samples"] == [{"interval": 1, "cycle": 100,
                                   "instrs": 50}]

    def test_csv_union_of_columns(self):
        reg = MetricsRegistry()
        reg.sample_interval(1, a=1)
        reg.sample_interval(2, b=2.5)
        lines = reg.samples_csv().splitlines()
        assert lines[0] == "interval,a,b"
        assert lines[1] == "1,1,"
        assert lines[2] == "2,,2.5"
        assert MetricsRegistry().samples_csv() == ""


class TestLogging:
    def test_get_logger_namespaced(self):
        assert get_logger("core").name == "repro.core"
        assert get_logger("repro.virt").name == "repro.virt"

    def test_configure_idempotent(self):
        root = configure_logging("info")
        before = len(root.handlers)
        configure_logging("debug")
        assert len(root.handlers) == before

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("chatty")


class TestTelemetryEndToEnd:
    def test_trace_covers_phases_and_validates(self):
        telemetry = Telemetry()
        run_sim(telemetry)
        doc = json.loads(telemetry.tracer.to_json())
        assert_valid_chrome_trace(doc)
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert {"phase", "bound", "weave", "interval"} <= cats
        names = {e["name"] for e in doc["traceEvents"]}
        assert "bound" in names and "weave" in names
        assert "barrier" in names
        assert any(n.startswith("core") for n in names)
        assert any(n.startswith("domain") for n in names)

    def test_metrics_sampled_every_interval(self):
        telemetry = Telemetry()
        result, _sim = run_sim(telemetry)
        samples = telemetry.metrics.samples
        assert len(samples) == result.intervals
        for row in samples:
            assert row["bound_seconds"] >= 0.0
            assert row["weave_seconds"] >= 0.0
        assert samples[-1]["interval"] == result.intervals
        hist = telemetry.metrics.histogram("mem.access_latency")
        assert hist.count > 0

    def test_scheduler_events_counted(self):
        telemetry = Telemetry()
        run_sim(telemetry)
        assert telemetry.metrics.counter("sched.schedule") > 0
        syscall_counters = [
            name for name in telemetry.metrics.to_dict()["counters"]
            if name.startswith("sched.syscalls.")]
        assert syscall_counters

    def test_telemetry_does_not_change_simulation(self):
        plain, _ = run_sim(None)
        traced, _ = run_sim(Telemetry())
        assert plain.cycles == traced.cycles
        assert plain.instrs == traced.instrs

    def test_trace_only_and_metrics_only(self):
        trace_only = Telemetry(metrics=False)
        run_sim(trace_only)
        assert trace_only.metrics is None
        assert len(trace_only.tracer.events) > 0
        metrics_only = Telemetry(trace=False)
        run_sim(metrics_only)
        assert metrics_only.tracer is None
        assert metrics_only.metrics.samples

    def test_attach_telemetry_at_run_time(self):
        config = small_test_system(num_cores=4, core_model="simple")
        threads = workload().make_threads(target_instrs=5_000)
        sim = ZSim(config, threads=threads)
        telemetry = Telemetry()
        sim.run(telemetry=telemetry)
        assert telemetry.metrics.samples
        assert telemetry.metrics.histogram("mem.access_latency").count > 0

    def test_stats_tree_gains_host_weave_and_histogram(self):
        result, _ = run_sim(None)
        stats = result.stats().to_dict()
        assert "speedup" in stats["host"]
        assert stats["weave"]["events"] > 0
        assert stats["mem"]["access_latency"]["count"] > 0
        # The whole tree, histograms included, must be JSON-safe.
        json.loads(result.stats().to_json())

    def test_stats_tree_without_weave(self):
        result, _ = run_sim(None, contention_model="none")
        stats = result.stats().to_dict()
        assert "weave" not in stats
        assert "host" in stats


class TestCli:
    def test_run_writes_all_outputs(self, tmp_path):
        from repro.cli import main
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        csv = tmp_path / "m.csv"
        stats = tmp_path / "s.json"
        rc = main(["run", "--preset", "test", "--instrs", "4000",
                   "--trace-out", str(trace),
                   "--metrics-out", str(metrics),
                   "--metrics-csv", str(csv),
                   "--stats-json", str(stats)])
        assert rc == 0
        assert_valid_chrome_trace(json.loads(trace.read_text()))
        doc = json.loads(metrics.read_text())
        assert doc["samples"]
        assert any(h["count"] > 0 for h in doc["histograms"].values())
        assert csv.read_text().startswith("interval,")
        stats_doc = json.loads(stats.read_text())
        assert "host" in stats_doc

    def test_run_without_telemetry_flags_builds_none(self, tmp_path):
        from repro.cli import main
        rc = main(["run", "--preset", "test", "--instrs", "2000"])
        assert rc == 0
