"""Tests for stats counters and metric aggregation."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.aggregate import (
    confidence_interval_95,
    hmean,
    ipc,
    mean,
    mean_abs,
    mpki,
    perf_error,
    run_until_tight,
    stdev,
)
from repro.stats.counters import StatsNode
from repro.stats.reporting import format_series, format_table


class TestStatsNode:
    def test_inc_and_get(self):
        node = StatsNode("n")
        node.inc("hits")
        node.inc("hits", 4)
        assert node.get("hits") == 5
        assert node.get("absent") == 0

    def test_children_created_once(self):
        node = StatsNode("root")
        assert node.child("c") is node.child("c")

    def test_to_dict_nested(self):
        root = StatsNode("root")
        root.set("x", 1)
        root.child("sub").set("y", 2)
        assert root.to_dict() == {"x": 1, "sub": {"y": 2}}

    def test_json_round_trip(self):
        root = StatsNode("root")
        root.set("a", 10)
        assert json.loads(root.to_json()) == {"a": 10}

    def test_flatten_paths(self):
        root = StatsNode("sim")
        root.set("cycles", 7)
        root.child("core0").set("instrs", 3)
        flat = dict(root.flatten())
        assert flat == {"sim.cycles": 7, "sim.core0.instrs": 3}

    def test_histogram_get_or_create(self):
        node = StatsNode("n")
        hist = node.histogram("lat")
        assert node.histogram("lat") is hist
        assert node.histograms == {"lat": hist}

    def test_histogram_in_to_dict_and_json(self):
        node = StatsNode("n")
        node.set("hits", 2)
        node.child("sub").histogram("lat").record(5)
        doc = node.to_dict()
        assert doc["hits"] == 2
        assert doc["sub"]["lat"]["count"] == 1
        assert doc["sub"]["lat"]["buckets"] == {"4-7": 1}
        assert json.loads(node.to_json()) == doc

    def test_histogram_edge_values_round_trip(self):
        node = StatsNode("n")
        hist = node.histogram("lat")
        for value in (0, 1, 1 << 100):
            hist.record(value)
        doc = json.loads(node.to_json())["lat"]
        assert doc["count"] == 3
        assert doc["min"] == 0 and doc["max"] == 1 << 100
        assert doc["buckets"]["0"] == 1
        assert doc["buckets"]["1"] == 1

    def test_histogram_flatten_scalars(self):
        node = StatsNode("sim")
        node.histogram("lat").record(8, n=2)
        flat = dict(node.flatten())
        assert flat["sim.lat.count"] == 2
        assert flat["sim.lat.total"] == 16
        assert flat["sim.lat.mean"] == 8.0


class TestMetrics:
    def test_ipc(self):
        assert ipc(100, 50) == 2.0
        assert ipc(100, 0) == 0.0

    def test_mpki(self):
        assert mpki(5, 1000) == 5.0
        assert mpki(5, 0) == 0.0

    def test_perf_error_sign_convention(self):
        """Positive = simulator overestimates (paper Section 4.1)."""
        assert perf_error(1.1, 1.0) == pytest.approx(0.1)
        assert perf_error(0.9, 1.0) == pytest.approx(-0.1)
        with pytest.raises(ValueError):
            perf_error(1.0, 0.0)

    def test_hmean_known_value(self):
        assert hmean([1, 1]) == 1.0
        assert hmean([2, 6]) == 3.0

    def test_hmean_dominated_by_small_values(self):
        assert hmean([0.1, 100]) < 0.5

    def test_hmean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            hmean([1, 0])
        with pytest.raises(ValueError):
            hmean([])

    def test_mean_abs(self):
        assert mean_abs([-1, 1, 3]) == pytest.approx(5 / 3)

    def test_stdev(self):
        assert stdev([1, 1, 1]) == 0.0
        assert stdev([5]) == 0.0
        assert stdev([1, 3]) == pytest.approx(2 ** 0.5)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.01, 1000), min_size=1, max_size=20))
    def test_hmean_bounds(self, values):
        h = hmean(values)
        assert min(values) - 1e-9 <= h <= max(values) + 1e-9


class TestConfidence:
    def test_single_sample_infinite(self):
        assert confidence_interval_95([1.0]) == float("inf")

    def test_tight_samples_tight_ci(self):
        assert confidence_interval_95([10.0] * 5) == 0.0

    def test_run_until_tight_deterministic(self):
        calls = []

        def run():
            calls.append(1)
            return 42.0
        value, samples = run_until_tight(run)
        assert value == 42.0
        assert len(calls) == 3  # min_runs

    def test_run_until_tight_noisy_stops_at_max(self):
        import random
        rng = random.Random(0)
        value, samples = run_until_tight(lambda: rng.uniform(0, 100),
                                         max_runs=5)
        assert len(samples) == 5


class TestReporting:
    def test_table_alignment(self):
        text = format_table(["name", "v"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "bbbb" in lines[3]

    def test_table_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.startswith("My Table")

    def test_series(self):
        text = format_series("speedup", [(1, 1.0), (2, 1.9)],
                             x_label="threads", y_label="x")
        assert "speedup" in text
        assert "1.90" in text
