"""Tests for multiprogrammed mixes and config presets' exact values."""

import pytest

from repro.config import tiled_chip, westmere, small_test_system
from repro.core import ZSim
from repro.workloads import spec_workload
from repro.workloads.multiprogrammed import (
    MultiprogrammedMix,
    interference_study,
)


class TestMultiprogrammedMix:
    def mix(self, names=("namd", "povray")):
        return MultiprogrammedMix(
            [spec_workload(n, scale=1 / 64) for n in names])

    def test_one_process_per_app(self):
        mix = self.mix()
        threads = mix.make_threads(target_instrs=5_000)
        assert len(threads) == 2
        assert len(mix.processes) == 2
        assert threads[0].process is not threads[1].process
        assert threads[0].process.name == "namd"

    def test_threads_pinned_to_distinct_cores(self):
        threads = self.mix().make_threads(target_instrs=5_000)
        assert threads[0].affinity == {0}
        assert threads[1].affinity == {1}

    def test_translation_caches_not_shared(self):
        threads = self.mix().make_threads(target_instrs=5_000)
        assert threads[0].stream.tcache is not threads[1].stream.tcache

    def test_footprints_disjoint(self):
        assert self.mix(("mcf", "libquantum", "namd")).footprint_span()

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            MultiprogrammedMix([])

    def test_mix_runs_to_completion(self):
        cfg = small_test_system(num_cores=2, core_model="simple")
        mix = self.mix()
        sim = ZSim(cfg, threads=mix.make_threads(target_instrs=8_000))
        res = sim.run()
        assert sim.scheduler.all_done
        # Both cores did their own app's work.
        assert sim.cores[0].instrs > 7_000
        assert sim.cores[1].instrs > 7_000

    def test_interference_study_shape(self):
        cfg = small_test_system(num_cores=2, core_model="simple")
        workloads = [spec_workload(n, scale=1 / 64)
                     for n in ("libquantum", "lbm")]
        results = interference_study(cfg, workloads,
                                     target_instrs=12_000)
        for name in ("libquantum", "lbm"):
            entry = results[name]
            assert entry["solo_cycles"] > 0
            # Sharing the chip never speeds an app up.
            assert entry["slowdown"] >= 0.99

    def test_interference_needs_enough_cores(self):
        cfg = small_test_system(num_cores=1)
        with pytest.raises(ValueError):
            interference_study(cfg, [spec_workload("namd", 1 / 64),
                                     spec_workload("mcf", 1 / 64)])


class TestPresetFidelity:
    """The presets must encode Tables 2 and 3 exactly."""

    def test_westmere_table2(self):
        cfg = westmere()
        assert cfg.num_cores == 6
        assert cfg.core.model == "ooo"
        assert cfg.core.freq_mhz == 2270
        assert (cfg.l1i.size_kb, cfg.l1i.ways, cfg.l1i.latency) == \
            (32, 4, 3)
        assert (cfg.l1d.size_kb, cfg.l1d.ways, cfg.l1d.latency) == \
            (32, 8, 4)
        assert (cfg.l2.size_kb, cfg.l2.ways, cfg.l2.latency) == \
            (256, 8, 7)
        assert not cfg.l2_shared_per_tile      # private L2
        assert cfg.l3.size_kb == 12 * 1024
        assert cfg.l3.ways == 16
        assert cfg.l3.banks == 6
        assert cfg.l3.latency == 14
        assert cfg.l3.mshrs == 16
        assert cfg.l3.hash_banks                # "hashed"
        assert cfg.network.topology == "ring"
        assert cfg.network.hop_latency == 1
        assert cfg.network.injection_latency == 5
        assert cfg.memory.controllers == 1
        assert cfg.memory.channels_per_controller == 3
        assert cfg.memory.page_policy == "closed"
        assert cfg.memory.scheduling == "fcfs"
        assert cfg.memory.powerdown_threshold == 15
        assert cfg.boundweave.interval_cycles == 1000

    def test_tiled_table3(self):
        for tiles, cores in ((4, 64), (16, 256), (64, 1024)):
            cfg = tiled_chip(num_tiles=tiles)
            assert cfg.num_cores == cores
            assert cfg.cores_per_tile == 16
            assert cfg.core.freq_mhz == 2000
            assert cfg.l2.size_kb == 4 * 1024
            assert cfg.l2.latency == 8
            assert cfg.l2_shared_per_tile
            assert cfg.l3.size_kb == 8 * 1024 * tiles  # 8MB bank/tile
            assert cfg.l3.latency == 12
            assert cfg.l3.banks == tiles
            assert cfg.network.topology == "mesh"
            assert cfg.network.router_stages == 2
            assert cfg.memory.controllers == tiles  # 1 per tile
            assert cfg.memory.channels_per_controller == 2

    def test_ddr3_1333_timing(self):
        cfg = westmere()
        timing = cfg.memory.timing
        assert cfg.memory.bus_mhz == 667
        assert timing.tCL == 9 and timing.tRCD == 9 and timing.tRP == 9
