"""Tests for the baselines: reference machine, TLB model, PDES, Graphite."""


from repro.baselines.graphite import graphite_simulator
from repro.baselines.pdes import PDESSimulator
from repro.baselines.reference import reference_simulator
from repro.baselines.tlb import PAGE_BITS, TLB, TLBMemory
from repro.core import ZSim
from repro.memory.contention import MD1Model
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads.base import KernelSpec, Workload


def workload(**kwargs):
    defaults = dict(name="bl", footprint_kb=256, mem_ratio=0.35,
                    pattern="random", hot_fraction=0.3,
                    barrier_iters=0, seed=5)
    defaults.update(kwargs)
    return Workload(KernelSpec(**defaults), num_threads=1)


class TestTLB:
    def test_hit_after_fill(self):
        tlb = TLB(entries=4)
        assert not tlb.lookup(7)
        assert tlb.lookup(7)
        assert tlb.hits == 1 and tlb.misses == 1

    def test_lru_eviction(self):
        tlb = TLB(entries=2)
        tlb.lookup(1)
        tlb.lookup(2)
        tlb.lookup(1)      # touch 1: 2 is now LRU
        tlb.lookup(3)      # evicts 2
        assert tlb.lookup(1)
        assert not tlb.lookup(2)

    def test_capacity_bound(self):
        tlb = TLB(entries=8)
        for page in range(100):
            tlb.lookup(page)
        assert len(tlb._map) == 8


class TestTLBMemory:
    def test_walk_adds_latency(self, tiny_config):
        h = MemoryHierarchy(tiny_config)
        tlbmem = TLBMemory(h, dtlb_entries=4)
        cold = tlbmem.access(0, 0x100000, False)
        # Warm both the TLB and the caches, then touch the same page.
        warm = tlbmem.access(0, 0x100000 + 64, False)
        assert tlbmem.walks == 1
        assert cold.latency > warm.latency

    def test_page_walks_pollute_caches(self, tiny_config):
        """PTE reads go through the hierarchy (the paper's explanation
        for reference-stream differences)."""
        h = MemoryHierarchy(tiny_config)
        tlbmem = TLBMemory(h, dtlb_entries=2)
        accesses_before = h.l1d[0].accesses
        for page in range(16):
            tlbmem.access(0, page << PAGE_BITS, False)
        # Each access did 1 data access + 2 PTE reads (TLB always misses
        # with 16 pages round-robin over 2 entries).
        assert h.l1d[0].accesses - accesses_before == 16 * 3

    def test_ifetch_uses_itlb(self, tiny_config):
        h = MemoryHierarchy(tiny_config)
        tlbmem = TLBMemory(h)
        tlbmem.access(0, 0x400000, False, ifetch=True)
        assert tlbmem.itlbs[0].misses == 1
        assert tlbmem.dtlbs[0].misses == 0

    def test_delegates_to_hierarchy(self, tiny_config):
        h = MemoryHierarchy(tiny_config)
        tlbmem = TLBMemory(h)
        assert tlbmem.config is h.config
        assert tlbmem.line_of(128) == 2


class TestReferenceMachine:
    def test_zsim_overestimates_performance(self, tiny_config):
        """The headline validation shape: zsim (no TLBs) reports fewer
        cycles than the reference for TLB-heavy workloads."""
        wl = workload(footprint_kb=1024, hot_fraction=0.0)
        ref = reference_simulator(
            tiny_config, wl.make_threads(target_instrs=20_000))
        rres = ref.run()
        zsim = ZSim(tiny_config, wl.make_threads(target_instrs=20_000))
        zres = zsim.run()
        assert zres.cycles < rres.cycles
        assert ref.tlb_memory.walks > 0

    def test_reference_deterministic(self, tiny_config):
        wl = workload()

        def once():
            sim = reference_simulator(
                tiny_config, wl.make_threads(target_instrs=10_000))
            return sim.run().cycles
        assert once() == once()

    def test_reference_has_bigger_predictor(self, tiny_ooo_config):
        wl = workload()
        sim = reference_simulator(
            tiny_ooo_config, wl.make_threads(target_instrs=1_000))
        assert sim.cores[0].bpred.table_size > \
            tiny_ooo_config.core.bpred.table_size


class TestPDESBaseline:
    def test_pdes_synchronizes_every_quantum(self, tiny_config):
        wl = workload()
        pdes = PDESSimulator(tiny_config,
                             wl.make_threads(target_instrs=5_000),
                             lookahead=10)
        res = pdes.run()
        assert res.synchronizations > res.cycles / 20
        assert pdes.lookahead == 10

    def test_pdes_slower_than_bound_weave(self, tiny_config):
        """The paper's claim, qualitatively: conservative PDES pays a
        barrier every few cycles and is much slower wall-clock."""
        wl = workload()
        zsim = ZSim(tiny_config, wl.make_threads(target_instrs=20_000))
        zres = zsim.run()
        pdes = PDESSimulator(tiny_config,
                             wl.make_threads(target_instrs=20_000),
                             lookahead=10)
        pres = pdes.run()
        assert pres.wall_seconds > 1.5 * zres.wall_seconds

    def test_lookahead_floor(self, tiny_config):
        pdes = PDESSimulator(tiny_config, lookahead=1)
        assert pdes.lookahead == 10


class TestGraphiteBaseline:
    def test_uses_md1_contention(self, tiny_config):
        sim = graphite_simulator(tiny_config)
        assert sim.contention_model == "md1"
        assert sim.weave is None

    def test_slack_window_configured(self, tiny_config):
        sim = graphite_simulator(tiny_config, slack=3000)
        assert sim.config.boundweave.interval_cycles == 3000


class TestMD1Accuracy:
    def test_underestimates_saturation_vs_event_driven(self, tiny_config):
        """Figure 6 (right) shape: at saturation, the M/D/1 estimate
        diverges from the event-driven model."""
        def cycles(model):
            # Every access misses (stride > line): memory saturates.
            wl = workload(name="strm", pattern="stride", stride=256,
                          mem_ratio=0.5, footprint_kb=2048,
                          hot_fraction=0.0)
            sim = ZSim(tiny_config,
                       wl.make_threads(target_instrs=30_000,
                                       num_threads=4),
                       contention_model=model)
            return sim.run().cycles
        none = cycles("none")
        md1 = cycles("md1")
        weave = cycles("weave")
        assert weave > 1.05 * none   # the event-driven model sees it
        # M/D/1 captures well under half of that contention (Figure 6
        # right: the queueing curve hugs the no-contention curve).
        assert (md1 - none) < 0.5 * (weave - none)

    def test_md1_wait_grows_with_load(self):
        model = MD1Model(service_cycles=10, window=1000)
        light = model.latency(0)
        for cycle in range(0, 900, 10):
            model.latency(cycle)
        heavy = model.latency(901)
        assert heavy > light
        assert model.mean_wait > 0
