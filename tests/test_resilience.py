"""Resilience layer: supervised execution, interval checkpoints, and
the deterministic fault-injection harness (repro.resilience).

The headline property: a supervised run that recovers from every
injected host fault produces a stats tree identical to a fault-free
serial run — faults change wall time and the recovery log, never
simulated results.
"""

import dataclasses
import os
import pickle
import zlib

import pytest

from repro.config import (
    BoundWeaveConfig,
    CacheConfig,
    CoreConfig,
    SystemConfig,
    small_test_system,
)
from repro.core import ZSim
from repro.errors import (
    CheckpointError,
    CheckpointVersionError,
    ConfigError,
    DeadlockError,
    ExecutionFault,
    WallClockExceeded,
    WatchdogTimeout,
    WorkerFailure,
)
from repro.exec import make_backend
from repro.exec.serial import SerialBackend
from repro.resilience import (
    FORMAT_VERSION,
    Checkpointer,
    FaultPlan,
    Supervisor,
    latest,
    read_checkpoint,
    write_checkpoint,
)
from repro.stats import assert_equivalent
from repro.workloads import mt_workload

WATCHDOG_S = 0.25

#: One spec per fault kind, each exercising a different detection path:
#: raise -> WorkerFailure, kill/stall/delay -> WatchdogTimeout,
#: corrupt -> HorizonViolation.
FAULT_MATRIX = ("raise@2:w0", "kill@2", "stall@3", "delay@2:0.4",
                "corrupt@3")


def _matrix_config(backend):
    """16 cores over 4 tiles so the weave runs multiple domains and the
    parallel paths are actually parallel."""
    cfg = SystemConfig(
        name="resilience-16c",
        num_tiles=4,
        cores_per_tile=4,
        core=CoreConfig(model="simple"),
        l1i=CacheConfig(name="l1i", size_kb=4, ways=2, latency=3),
        l1d=CacheConfig(name="l1d", size_kb=4, ways=4, latency=4),
        l2=CacheConfig(name="l2", size_kb=16, ways=4, latency=7,
                       shared_by=4),
        l2_shared_per_tile=True,
        l3=CacheConfig(name="l3", size_kb=64, ways=8, latency=14,
                       banks=4, shared_by=16),
        boundweave=BoundWeaveConfig(host_threads=4, backend=backend,
                                    watchdog_budget_s=WATCHDOG_S),
    )
    return cfg.validate()


def _matrix_sim(backend, instrs=25_000):
    config = _matrix_config(backend)
    wl = mt_workload("blackscholes", scale=1 / 64,
                     num_threads=config.num_cores)
    return ZSim(config, threads=wl.make_threads(target_instrs=instrs))


def _stats_tree(result):
    tree = result.stats().to_dict()
    # Host-side stats (wall times, backend name, recovery counters) are
    # the one legitimate difference between backends and between
    # faulted and fault-free runs.
    tree.pop("host", None)
    return tree


@pytest.fixture(scope="module")
def serial_baseline():
    """Fault-free serial run of the matrix workload."""
    return _stats_tree(_matrix_sim("serial").run())


# ---------------------------------------------------------------------
# Fault plan grammar
# ---------------------------------------------------------------------


class TestFaultPlanGrammar:
    def test_parse_all_kinds_and_selectors(self):
        plan = FaultPlan.parse(
            "kill@3:w0; stall@5:w1:0.5; delay@6:0.2; raise@2:c1; "
            "corrupt@4:d1; raise@7:weave-stage")
        kinds = [type(f).kind for f in plan.faults]
        assert kinds == ["kill", "stall", "delay", "raise", "corrupt",
                        "raise"]
        kill, stall, delay, raise_, corrupt, staged = plan.faults
        assert (kill.interval, kill.worker) == (3, 0)
        assert (stall.worker, stall.seconds) == (1, 0.5)
        assert delay.seconds == 0.2
        assert raise_.core == 1
        assert corrupt.domain == 1
        assert staged.phase == "weave-stage"

    def test_describe_roundtrips(self):
        for spec in FAULT_MATRIX:
            plan = FaultPlan.parse(spec)
            assert FaultPlan.parse(plan.faults[0].describe()).faults

    @pytest.mark.parametrize("bad", ["", "  ;  ", "explode@3", "kill",
                                     "kill@x", "kill@3:q9"])
    def test_malformed_raises_config_error(self, bad):
        with pytest.raises(ConfigError):
            FaultPlan.parse(bad)

    def test_config_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("nope@1")

    def test_matching_consumes_a_fault_once(self):
        plan = FaultPlan.parse("raise@2:w0")
        ctx = {"interval": 2, "worker": 0, "phase": "bound"}
        fn = plan.wrap(lambda i: None, ctx, backend=None, epoch=0)
        assert fn is not None and plan.remaining() == []
        # Second dispatch with the same context: already consumed.
        sentinel = object()
        assert plan.wrap(sentinel, ctx, backend=None, epoch=0) is sentinel

    def test_reset_rearms(self):
        plan = FaultPlan.parse("raise@2")
        plan.faults[0].fired = True
        plan.reset()
        assert plan.remaining() == plan.faults


# ---------------------------------------------------------------------
# The fault matrix: every fault caught, recovered, and invisible in the
# final stats
# ---------------------------------------------------------------------


class TestFaultMatrix:
    @pytest.mark.parametrize("backend", ["parallel", "pipelined"])
    @pytest.mark.parametrize("spec", FAULT_MATRIX)
    def test_supervised_run_matches_serial(self, backend, spec,
                                           serial_baseline):
        sim = _matrix_sim(backend)
        plan = FaultPlan.parse(spec, seed=7)
        sim.backend.fault_plan = plan
        supervisor = Supervisor(sim, max_retries=3, backoff_intervals=1)
        tree = _stats_tree(sim.run())
        assert plan.remaining() == [], "fault never fired: %s" % spec
        assert supervisor.recoveries >= 1
        assert not supervisor.fallback_permanent
        assert_equivalent(tree, serial_baseline,
                          context="%s under %s" % (spec, backend))

    def test_history_records_fault_context(self, serial_baseline):
        sim = _matrix_sim("parallel")
        sim.backend.fault_plan = FaultPlan.parse("raise@2:w0")
        supervisor = Supervisor(sim, max_retries=3, backoff_intervals=1)
        sim.run()
        assert len(supervisor.history) == 1
        entry = supervisor.history[0]
        assert entry["kind"] == "WorkerFailure"
        assert entry["interval"] == 2
        assert entry["worker"] == 0

    def test_stats_tree_reports_recovery_counters(self):
        sim = _matrix_sim("parallel")
        sim.backend.fault_plan = FaultPlan.parse("raise@2:w0")
        Supervisor(sim, max_retries=3, backoff_intervals=1)
        tree = sim.run().stats().to_dict()
        res = tree["host"]["resilience"]
        assert res["recoveries"] == 1
        assert res["fallback_permanent"] == 0


class TestPermanentFallback:
    def test_repeated_faults_fall_back_to_serial(self, serial_baseline):
        sim = _matrix_sim("parallel")
        sim.backend.fault_plan = FaultPlan.parse("raise@2:w0")
        supervisor = Supervisor(sim, max_retries=1, backoff_intervals=0)
        tree = _stats_tree(sim.run())
        assert supervisor.fallback_permanent
        assert isinstance(sim.backend, SerialBackend)
        assert sim.host_model.backend_name == "serial"
        # Degraded, not wrong: the run still matches the reference.
        assert_equivalent(tree, serial_baseline,
                          context="permanent fallback")


# ---------------------------------------------------------------------
# Unsupervised failure propagation (the satellite fixes in repro.exec)
# ---------------------------------------------------------------------


class TestUnsupervisedPropagation:
    def test_worker_failure_chains_the_original(self):
        sim = _matrix_sim("parallel")
        sim.backend.fault_plan = FaultPlan.parse("raise@2:w0")
        with pytest.raises(WorkerFailure) as excinfo:
            sim.run()
        failure = excinfo.value
        assert isinstance(failure.__cause__, RuntimeError)
        assert "injected failure" in str(failure.__cause__)
        assert "injected failure" in failure.traceback_text
        assert failure.interval == 2
        assert isinstance(failure, ExecutionFault)

    def test_killed_worker_surfaces_as_watchdog_timeout(self):
        sim = _matrix_sim("parallel")
        sim.backend.fault_plan = FaultPlan.parse("kill@2")
        with pytest.raises(WatchdogTimeout) as excinfo:
            sim.run()
        assert excinfo.value.budget_s == pytest.approx(WATCHDOG_S)

    def test_shutdown_does_not_hang_on_poisoned_pool(self):
        """After a kill fault the dead worker's inbox never drains;
        shutdown must bound its sentinel delivery and joins instead of
        wedging (ZSim.run already shut down once in its finally — this
        is the explicit second call)."""
        sim = _matrix_sim("parallel")
        sim.backend.fault_plan = FaultPlan.parse("kill@2")
        backend = sim.backend
        with pytest.raises(WatchdogTimeout):
            sim.run()
        backend.shutdown()  # must return promptly, not hang
        assert backend._workers == []

    def test_run_shuts_backend_down_when_backend_raises(self,
                                                        tiny_config):
        shutdowns = []

        class Exploding(SerialBackend):
            def run_bound_pass(self, bound, cores, limit_cycle,
                               timings):
                raise RuntimeError("host backend exploded")

            def shutdown(self):
                shutdowns.append(True)

        wl = mt_workload("blackscholes", scale=1 / 64, num_threads=4)
        sim = ZSim(tiny_config,
                   threads=wl.make_threads(target_instrs=2_000),
                   backend=Exploding())
        with pytest.raises(RuntimeError, match="exploded"):
            sim.run()
        assert shutdowns  # the try/finally in ZSim.run fired


# ---------------------------------------------------------------------
# Typed errors (satellites)
# ---------------------------------------------------------------------


class TestTypedErrors:
    def _deadlocked_sim(self, tiny_config):
        from repro.dbt.instrumentation import InstrumentedStream
        from repro.isa.opcodes import Opcode
        from repro.isa.program import BBLExec, Instruction, Program
        from repro.virt import SimThread
        from repro.virt.syscalls import FutexWait

        program = Program("dead")
        block = program.add_block([Instruction(Opcode.SYSCALL)])

        def stuck(key):
            yield BBLExec(block, (), syscall=FutexWait(key))

        return ZSim(tiny_config, threads=[
            SimThread(InstrumentedStream(stuck("a")), name="spin-a"),
            SimThread(InstrumentedStream(stuck("b")), name="spin-b")])

    def test_deadlock_is_typed_and_carries_the_blocked_set(
            self, tiny_config):
        sim = self._deadlocked_sim(tiny_config)
        with pytest.raises(DeadlockError) as excinfo:
            sim.run()
        err = excinfo.value
        assert isinstance(err, RuntimeError)  # old handlers keep working
        assert err.next_wake is None
        names = {entry["thread"] for entry in err.blocked}
        assert names == {"spin-a", "spin-b"}

    def test_unknown_backend_is_a_typed_config_error(self):
        with pytest.raises(ConfigError):
            make_backend("quantum")
        with pytest.raises(ValueError, match="backend"):
            make_backend("quantum")

    def test_config_validation_raises_config_error(self):
        cfg = small_test_system(num_cores=2)
        cfg = dataclasses.replace(
            cfg, boundweave=dataclasses.replace(cfg.boundweave,
                                                watchdog_budget_s=-1.0))
        with pytest.raises(ConfigError, match="watchdog"):
            cfg.validate()
        cfg = small_test_system(num_cores=2)
        cfg = dataclasses.replace(
            cfg, boundweave=dataclasses.replace(cfg.boundweave,
                                                recovery_max_retries=0))
        with pytest.raises(ConfigError, match="retries"):
            cfg.validate()


# ---------------------------------------------------------------------
# Wall-clock budget
# ---------------------------------------------------------------------


class TestWallClockBudget:
    def _sim(self, tmp_path=None):
        cfg = small_test_system(num_cores=4)
        wl = mt_workload("blackscholes", scale=1 / 64, num_threads=4)
        sim = ZSim(cfg, threads=wl.make_threads(target_instrs=8_000))
        if tmp_path is not None:
            sim.checkpointer = Checkpointer(str(tmp_path), every=1)
        return sim

    def test_exhausted_budget_raises_typed_error(self):
        sim = self._sim()
        sim.max_wall_seconds = 0.0
        with pytest.raises(WallClockExceeded) as excinfo:
            sim.run()
        err = excinfo.value
        assert err.budget_s == 0.0
        assert err.checkpoint_path is None

    def test_budget_stop_writes_a_final_checkpoint(self, tmp_path):
        sim = self._sim(tmp_path / "ckpt")
        sim.max_wall_seconds = 0.0
        with pytest.raises(WallClockExceeded) as excinfo:
            sim.run()
        path = excinfo.value.checkpoint_path
        assert path is not None and os.path.exists(path)
        assert read_checkpoint(path)["version"] == FORMAT_VERSION


# ---------------------------------------------------------------------
# Checkpoint format and resume
# ---------------------------------------------------------------------


def _small_sim(instrs=8_000):
    cfg = small_test_system(num_cores=4)
    wl = mt_workload("blackscholes", scale=1 / 64, num_threads=4)
    return ZSim(cfg, threads=wl.make_threads(target_instrs=instrs)), wl


class TestCheckpointFormat:
    def test_roundtrip_preserves_capsule_fields(self, tmp_path):
        sim, _ = _small_sim()
        path = str(tmp_path / "ckpt.pkl")
        write_checkpoint(path, sim, interval=0, limit=1000,
                         meta={"workload": "blackscholes"})
        capsule = read_checkpoint(path)
        assert capsule["version"] == FORMAT_VERSION
        assert capsule["interval"] == 0
        assert capsule["limit"] == 1000
        assert capsule["backend"] == "serial"
        assert capsule["meta"] == {"workload": "blackscholes"}
        assert capsule["config_name"] == sim.config.name

    def test_not_a_checkpoint_file(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(b"hello world\nnot a checkpoint")
        with pytest.raises(CheckpointError):
            read_checkpoint(str(path))

    def test_version_skew_is_typed(self, tmp_path):
        body = pickle.dumps({})
        path = tmp_path / "future.pkl"
        path.write_bytes(b"repro-ckpt %d %08x\n"
                         % (FORMAT_VERSION + 1, zlib.crc32(body))
                         + body)
        with pytest.raises(CheckpointVersionError) as excinfo:
            read_checkpoint(str(path))
        assert excinfo.value.found == FORMAT_VERSION + 1
        assert excinfo.value.expected == FORMAT_VERSION

    def test_corrupt_payload_fails_the_checksum(self, tmp_path):
        sim, _ = _small_sim()
        path = str(tmp_path / "ckpt.pkl")
        write_checkpoint(path, sim, interval=0, limit=1000)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointError, match="checksum"):
            read_checkpoint(path)

    def test_latest_picks_highest_interval(self, tmp_path):
        assert latest(str(tmp_path)) is None
        for interval in (3, 12, 7):
            (tmp_path / ("ckpt-%08d.pkl" % interval)).write_bytes(b"")
        assert latest(str(tmp_path)).endswith("ckpt-%08d.pkl" % 12)

    def test_checkpointer_stride_and_prune(self, tmp_path):
        sim, _ = _small_sim()
        ckpt = Checkpointer(str(tmp_path), every=2, keep=2)
        for interval in range(1, 7):
            ckpt.maybe_save(sim, interval, limit=1000 * interval)
        names = sorted(os.listdir(str(tmp_path)))
        prefix = "ckpt-%s-" % ckpt.run_id
        assert names == ["%s%08d.pkl" % (prefix, 4),
                         "%s%08d.pkl" % (prefix, 6)]
        assert ckpt.saved == 3  # intervals 2, 4, 6

    def test_prune_spares_other_runs_in_a_shared_dir(self, tmp_path):
        """Two runs sharing --checkpoint-dir: each prunes only its own
        files, so one run's stride can no longer delete the other's
        newest checkpoint out from under a resume (regression)."""
        sim, _ = _small_sim()
        mine = Checkpointer(str(tmp_path), every=1, keep=1)
        other = Checkpointer(str(tmp_path), every=1, keep=1)
        # A legacy unqualified checkpoint must survive pruning too.
        legacy = tmp_path / ("ckpt-%08d.pkl" % 1)
        legacy.write_bytes(b"")
        other.save(sim, 1, limit=1000)
        mine.save(sim, 1, limit=1000)
        mine.save(sim, 2, limit=2000)  # prunes mine's interval 1 only
        names = set(os.listdir(str(tmp_path)))
        assert "ckpt-%s-%08d.pkl" % (other.run_id, 1) in names
        assert "ckpt-%s-%08d.pkl" % (mine.run_id, 1) not in names
        assert "ckpt-%s-%08d.pkl" % (mine.run_id, 2) in names
        assert legacy.name in names
        # latest() reads across runs and both filename forms.
        assert latest(str(tmp_path)).endswith("-%08d.pkl" % 2)


class TestResume:
    def test_resume_matches_uninterrupted_run(self, tmp_path):
        baseline_sim, _ = _small_sim()
        baseline = _stats_tree(baseline_sim.run())

        partial, wl = _small_sim()
        partial.checkpointer = Checkpointer(str(tmp_path), every=1)
        partial.run(max_intervals=5)  # "killed" mid-run

        capsule = read_checkpoint(latest(str(tmp_path)))
        threads = wl.make_threads(target_instrs=8_000)
        resumed = ZSim.resume(capsule, threads)
        assert_equivalent(_stats_tree(resumed.run()), baseline,
                          context="resume vs uninterrupted")

    def test_resume_after_fault_recovery_matches(self, tmp_path,
                                                 serial_baseline):
        """Checkpointing composes with supervision: recover from a kill
        fault, checkpoint, stop, resume, and the stats still match."""
        sim = _matrix_sim("parallel")
        sim.backend.fault_plan = FaultPlan.parse("kill@2")
        Supervisor(sim, max_retries=3, backoff_intervals=1)
        sim.checkpointer = Checkpointer(str(tmp_path), every=1)
        sim.run(max_intervals=6)

        capsule = read_checkpoint(latest(str(tmp_path)))
        wl = mt_workload("blackscholes", scale=1 / 64, num_threads=16)
        resumed = ZSim.resume(capsule, wl.make_threads(
            target_instrs=25_000))
        assert_equivalent(_stats_tree(resumed.run()), serial_baseline,
                          context="resume after recovery")

    def test_resume_rejects_wrong_thread_count(self, tmp_path):
        sim, wl = _small_sim()
        path = str(tmp_path / "ckpt.pkl")
        write_checkpoint(path, sim, interval=0, limit=1000)
        capsule = read_checkpoint(path)
        threads = wl.make_threads(target_instrs=8_000)[:-1]
        with pytest.raises(CheckpointError, match="threads"):
            ZSim.resume(capsule, threads)
