"""The flattened per-instruction data plane must be invisible.

Three layers of guarantees:

* the schedule-once ``DecodedBBL`` tables (``flat``, ``mem_ops``,
  ``fetch_lines``, ``final_writes``) are field-for-field faithful to the
  legacy per-µop objects and to an independently simulated scoreboard;
* the L1-hit fast path can be switched off with zero effect on
  simulated stats;
* slab recycling (contexts, results, trace lists) survives the full
  matrix — backends, kill faults, checkpoint/resume — byte-identically.
"""

import pytest

from repro.config import small_test_system
from repro.core import ZSim
from repro.isa.decoder import FETCH_LINE_BYTES, decode_bbl
from repro.isa.uops import UopType
from repro.resilience import Checkpointer, latest, read_checkpoint
from repro.stats import assert_equivalent
from repro.workloads import mt_workload, spec_workload

from conftest import alu_block, build_program, mem_block


# ---------------------------------------------------------------------
# Flat descriptor tables vs the legacy µop objects
# ---------------------------------------------------------------------


def _workload_blocks():
    """A corpus of static blocks: every kernel block of three real
    workload generators plus the synthetic corner cases."""
    blocks = []
    for make in (lambda: spec_workload("mcf", scale=1 / 64),
                 lambda: spec_workload("namd", scale=1 / 64),
                 lambda: mt_workload("blackscholes", scale=1 / 64,
                                     num_threads=2)):
        blocks.extend(make().kernel_program().program.blocks)
    blocks.extend(build_program(num_blocks=2).blocks)
    blocks.append(mem_block(loads=3, stores=2))
    blocks.append(alu_block(count=6, dependent=True))
    assert len(blocks) > 10
    return blocks


def _reference_schedule(uops):
    """Recompute the static dependency schedule by walking the legacy
    Uop objects with an explicit last-writer scoreboard."""
    last_writer = {}
    rows = []
    final = {}
    for i, uop in enumerate(uops):
        row = []
        for src in (uop.src1, uop.src2):
            if src >= 0 and src in last_writer:
                row += [last_writer[src], -1]
            elif src >= 0:
                row += [-1, src]
            else:
                row += [-1, -1]
        rows.append(tuple(row))
        for dst in (uop.dst1, uop.dst2):
            if dst >= 0:
                last_writer[dst] = i
                final[dst] = i
    return rows, final


class TestFlatDescriptorFidelity:
    def test_flat_matches_uops_field_for_field(self):
        for block in _workload_blocks():
            decoded = decode_bbl(block)
            assert len(decoded.flat) == len(decoded.uops)
            assert decoded.num_uops == len(decoded.uops)
            for row, uop in zip(decoded.flat, decoded.uops):
                assert row[:4] == (uop.type, uop.lat, uop.ports,
                                   uop.mem_slot)

    def test_static_schedule_matches_scoreboard_walk(self):
        for block in _workload_blocks():
            decoded = decode_bbl(block)
            rows, final = _reference_schedule(decoded.uops)
            assert [row[4:] for row in decoded.flat] == rows
            assert dict(decoded.final_writes) == final

    def test_dependency_indices_point_backwards(self):
        for block in _workload_blocks():
            for i, row in enumerate(decode_bbl(block).flat):
                _type, _lat, _ports, _slot, dep1, gsrc1, dep2, gsrc2 = row
                for dep, gsrc in ((dep1, gsrc1), (dep2, gsrc2)):
                    assert dep < i
                    # In-block and global sources are exclusive.
                    assert dep < 0 or gsrc < 0

    def test_aggregates_match_uops(self):
        for block in _workload_blocks():
            decoded = decode_bbl(block)
            uops = decoded.uops
            assert decoded.num_loads == sum(
                1 for u in uops if u.type == UopType.LOAD)
            assert decoded.num_stores == sum(
                1 for u in uops if u.type == UopType.STORE_ADDR)
            assert decoded.mem_ops == tuple(
                (u.mem_slot, u.type == UopType.STORE_ADDR) for u in uops
                if u.type in (UopType.LOAD, UopType.STORE_ADDR))
            assert decoded.has_syscall == any(
                u.type == UopType.SYSCALL for u in uops)

    def test_fetch_lines_cover_block_bytes(self):
        for block in _workload_blocks():
            lines = decode_bbl(block).fetch_lines
            end = block.address + block.num_bytes
            assert lines[0] == block.address & ~(FETCH_LINE_BYTES - 1)
            assert lines[0] <= block.address < lines[0] + FETCH_LINE_BYTES
            for a, b in zip(lines, lines[1:]):
                assert b - a == FETCH_LINE_BYTES
            assert lines[-1] < end <= lines[-1] + FETCH_LINE_BYTES


# ---------------------------------------------------------------------
# L1-hit fast path: switchable, invisible
# ---------------------------------------------------------------------


def _stats_tree(result):
    return result.stats().to_dict()


def _run(config, contention, fastpath=None, backend=None,
         instrs=15_000, l2_fastpath=None, flat=None):
    wl = mt_workload("blackscholes", scale=1 / 64,
                     num_threads=config.num_cores)
    sim = ZSim(config, threads=wl.make_threads(target_instrs=instrs),
               contention_model=contention, backend=backend)
    if fastpath is not None:
        sim.hierarchy.enable_fastpath = fastpath
    if l2_fastpath is not None:
        sim.hierarchy.enable_l2_fastpath = l2_fastpath
    if flat is not None:
        sim.hierarchy.enable_flat_walk = flat
    return sim, _stats_tree(sim.run())


class TestFastpathEquivalence:
    @pytest.mark.parametrize("contention", ("none", "md1", "weave"))
    @pytest.mark.parametrize("core_model", ("simple", "ooo"))
    def test_fastpath_off_is_invisible(self, core_model, contention):
        cfg = small_test_system(num_cores=2, core_model=core_model)
        sim_on, on = _run(cfg, contention)
        cfg = small_test_system(num_cores=2, core_model=core_model)
        sim_off, off = _run(cfg, contention, fastpath=False)
        # Host-side counters (fastpath_hits etc.) legitimately differ;
        # every simulated stat must be byte-identical.
        assert_equivalent(on, off, ignore=("host",),
                          context="fastpath on vs off (%s, %s)"
                          % (core_model, contention))
        assert sim_on.hierarchy.fastpath_hits > 0
        assert sim_off.hierarchy.fastpath_hits == 0

    @pytest.mark.parametrize("contention", ("none", "md1", "weave"))
    @pytest.mark.parametrize("core_model", ("simple", "ooo"))
    def test_l2_fastpath_off_is_invisible(self, core_model, contention):
        """The shared-level hit fast path (ISSUE 10) must be invisible
        on its own: L1 fast path held constant, L2 path toggled."""
        cfg = small_test_system(num_cores=2, core_model=core_model)
        sim_on, on = _run(cfg, contention)
        cfg = small_test_system(num_cores=2, core_model=core_model)
        sim_off, off = _run(cfg, contention, l2_fastpath=False)
        assert_equivalent(on, off, ignore=("host",),
                          context="l2 fastpath on vs off (%s, %s)"
                          % (core_model, contention))
        assert sim_on.hierarchy.l2_fastpath_hits > 0
        assert sim_off.hierarchy.l2_fastpath_hits == 0

    @pytest.mark.parametrize("contention", ("none", "weave"))
    def test_both_fastpaths_off_is_invisible(self, contention):
        """Every access down the full coherence walk still matches."""
        cfg = small_test_system(num_cores=4, core_model="ooo")
        _, on = _run(cfg, contention)
        cfg = small_test_system(num_cores=4, core_model="ooo")
        sim_off, off = _run(cfg, contention, fastpath=False,
                            l2_fastpath=False)
        assert_equivalent(on, off, ignore=("host",),
                          context="both fastpaths off (%s)" % contention)
        assert sim_off.hierarchy.fastpath_hits == 0
        assert sim_off.hierarchy.l2_fastpath_hits == 0
        assert sim_off.hierarchy.slow_accesses > 0

    @pytest.mark.parametrize("contention", ("none", "md1", "weave"))
    @pytest.mark.parametrize("core_model", ("simple", "ooo"))
    def test_flat_walk_off_is_invisible(self, core_model, contention):
        """The flattened coherence walk (ISSUE 10) against the recursive
        reference implementation, fast paths disabled so every access
        exercises the walk under test."""
        cfg = small_test_system(num_cores=4, core_model=core_model)
        _, on = _run(cfg, contention, fastpath=False, l2_fastpath=False)
        cfg = small_test_system(num_cores=4, core_model=core_model)
        sim_off, off = _run(cfg, contention, fastpath=False,
                            l2_fastpath=False, flat=False)
        assert_equivalent(on, off, ignore=("host",),
                          context="flat walk on vs off (%s, %s)"
                          % (core_model, contention))
        assert sim_off.hierarchy.slow_accesses > 0

    def test_host_dbt_counters_are_reported(self):
        cfg = small_test_system(num_cores=2, core_model="ooo")
        sim, tree = _run(cfg, "weave")
        dbt = tree["host"]["dbt"]
        assert dbt["fastpath_hits"] == sim.hierarchy.fastpath_hits > 0
        assert dbt["l2_fastpath_hits"] == \
            sim.hierarchy.l2_fastpath_hits > 0
        assert dbt["slow_accesses"] == sim.hierarchy.slow_accesses > 0
        assert 0.0 < dbt["fastpath_hit_rate"] < 1.0
        assert dbt["translation_hit_rate"] > 0.9
        assert dbt["trace_recycles"] > 0
        hier = sim.hierarchy
        assert dbt["dir_bitmask_ops"] == \
            sum(c.dir_ops for c in hier.all_caches()) \
            + hier.mainmem.dir_ops > 0

    def test_slabs_stay_bounded_and_recycle(self):
        cfg = small_test_system(num_cores=2, core_model="ooo")
        sim, _ = _run(cfg, "weave")
        assert sim.hierarchy.ctx_reuses > 0
        assert sim.hierarchy.result_reuses > 0
        assert len(sim.hierarchy._result_pool) <= 4096
        # Pooled weave events must come back with clean edge lists.
        for event in sim.weave.pool._free:
            assert event.children == []


# ---------------------------------------------------------------------
# Recycling across the backend/fault/resume matrix
# ---------------------------------------------------------------------


class TestRecyclingMatrix:
    def test_backends_match_serial_with_recycling(self):
        cfg = small_test_system(num_cores=2, core_model="ooo")
        _, baseline = _run(cfg, "weave", backend="serial")
        for backend in ("parallel", "pipelined", "process"):
            cfg = small_test_system(num_cores=2, core_model="ooo")
            sim, tree = _run(cfg, "weave", backend=backend)
            assert_equivalent(tree, baseline, ignore=("host",),
                              context="%s vs serial with recycling"
                              % backend)

    def test_kill_and_resume_matches_straight_run(self, tmp_path):
        """Checkpoint mid-run (with populated slabs), resume in a fresh
        simulator, and the final stats match an uninterrupted run: the
        pools are host-side state and must not leak into capsules."""
        cfg = small_test_system(num_cores=2, core_model="ooo")
        _, baseline = _run(cfg, "weave")

        cfg = small_test_system(num_cores=2, core_model="ooo")
        wl = mt_workload("blackscholes", scale=1 / 64,
                         num_threads=cfg.num_cores)
        partial = ZSim(cfg, threads=wl.make_threads(target_instrs=15_000),
                       contention_model="weave")
        partial.checkpointer = Checkpointer(str(tmp_path), every=1)
        partial.run(max_intervals=3)  # "killed" mid-run, slabs warm
        assert partial.hierarchy.result_reuses > 0

        capsule = read_checkpoint(latest(str(tmp_path)))
        resumed = ZSim.resume(
            capsule, wl.make_threads(target_instrs=15_000))
        # Resume starts with cold slabs but identical simulated state.
        assert resumed.hierarchy._result_pool == []
        assert_equivalent(_stats_tree(resumed.run()), baseline,
                          ignore=("host",),
                          context="kill-and-resume vs straight run")

    def test_old_checkpoint_without_slab_fields_resumes(self, tmp_path):
        """A capsule written before the data-plane refactor lacks the
        pool/counter attributes; __setstate__ must default them."""
        cfg = small_test_system(num_cores=2, core_model="ooo")
        wl = mt_workload("blackscholes", scale=1 / 64,
                         num_threads=cfg.num_cores)
        partial = ZSim(cfg, threads=wl.make_threads(target_instrs=15_000),
                       contention_model="weave")
        partial.checkpointer = Checkpointer(str(tmp_path), every=1)
        partial.run(max_intervals=2)

        capsule = read_checkpoint(latest(str(tmp_path)))
        resumed = ZSim.resume(
            capsule, wl.make_threads(target_instrs=15_000))
        hier = resumed.hierarchy
        # Strip the new attributes as an old capsule would have them.
        state = hier.__getstate__()
        for attr in ("_ctx_pool", "_result_pool", "enable_fastpath",
                     "enable_l2_fastpath", "fastpath_hits",
                     "l2_fastpath_hits", "slow_accesses", "ctx_reuses",
                     "result_reuses", "enable_flat_walk", "_walk_caches",
                     "_walk_idx"):
            state.pop(attr, None)
        hier.__setstate__(state)
        assert hier._ctx_pool == [] and hier._result_pool == []
        assert hier.enable_fastpath in (True, False)
        # And an array pickled without free-way counts recomputes them.
        array = hier.l1d[0].array
        array_state = dict(array.__dict__)
        array_state.pop("_free")
        array.__setstate__(array_state)
        assert array._free == [sum(w is None for w in ways)
                               for ways in array._ways]
        resumed.run()
