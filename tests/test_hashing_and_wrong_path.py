"""Tests for set-index hashing, wrong-path fetches, and the pipelined
host model."""

import dataclasses

import pytest

from repro.config import small_test_system, westmere
from repro.core import HostModel, ZSim
from repro.memory.cache_array import CacheArray
from repro.memory.coherence import MESI
from repro.workloads.base import KernelSpec, Workload


class TestSetHashing:
    def test_hashed_index_in_range(self):
        array = CacheArray(64, 4, hash_sets=True)
        for line in range(0, 1 << 20, 977):
            assert 0 <= array.set_index(line) < 64

    def test_hashing_spreads_power_of_two_strides(self):
        """A stride equal to the set count maps every access to one set
        without hashing, but spreads with it."""
        plain = CacheArray(64, 4)
        hashed = CacheArray(64, 4, hash_sets=True)
        lines = [i * 64 for i in range(256)]
        plain_sets = {plain.set_index(line) for line in lines}
        hashed_sets = {hashed.set_index(line) for line in lines}
        assert len(plain_sets) == 1
        assert len(hashed_sets) > 16

    def test_lookup_consistent_with_hashing(self):
        array = CacheArray(16, 2, hash_sets=True)
        array.fill(12345, MESI.E)
        assert array.lookup(12345) == MESI.E
        assert array.invalidate(12345) == MESI.E

    def test_hashed_l3_reduces_conflict_misses(self):
        """End to end: a large-stride workload thrashes a direct-indexed
        L3 set but survives a hashed one."""
        def run(hash_sets):
            cfg = small_test_system(num_cores=1, core_model="simple")
            cfg = dataclasses.replace(cfg, l3=dataclasses.replace(
                cfg.l3, hash_sets=hash_sets))
            spec = KernelSpec(name="hash", pattern="stride",
                              stride=cfg.l3.num_sets * 64,
                              footprint_kb=512, mem_ratio=0.4,
                              hot_fraction=0.0, barrier_iters=0, seed=3)
            sim = ZSim(cfg, Workload(spec, 1).make_threads(
                target_instrs=20_000), contention_model="none")
            return sim.run().core_mpki("l3")
        assert run(True) < run(False)


class TestWrongPathFetch:
    def run(self, wrong_path):
        cfg = westmere(num_cores=1, core_model="ooo")
        cfg = dataclasses.replace(cfg, core=dataclasses.replace(
            cfg.core, wrong_path_fetch=wrong_path))
        spec = KernelSpec(name="wp", branch_rand=0.4, code_blocks=64,
                          mem_ratio=0.2, barrier_iters=0, seed=8)
        sim = ZSim(cfg, Workload(spec, 1).make_threads(
            target_instrs=30_000))
        res = sim.run()
        return res, sim.cores[0]

    def test_wrong_path_fetches_counted(self):
        _res, core = self.run(True)
        assert core.mispredicts > 0
        assert core.wrong_path_fetches == core.mispredicts

    def test_disabled_by_config(self):
        _res, core = self.run(False)
        assert core.wrong_path_fetches == 0

    def test_wrong_path_pollutes_icache(self):
        """Wrong-path fetches touch extra I-cache lines: total L1I
        traffic grows (even though MPKI attribution excludes them)."""
        _res_on, core_on = self.run(True)
        _res_off, core_off = self.run(False)
        assert core_on.wrong_path_fetches > 0
        # The workloads are identical; timing should stay close (the
        # recovery penalty hides wrong-path latency).
        assert abs(core_on.cycle - core_off.cycle) < 0.2 * core_off.cycle


class TestPipelinedHostModel:
    def model(self):
        model = HostModel(host_threads=(1, 8))
        for _ in range(10):
            model.record_interval([(c, 0.01) for c in range(8)],
                                  [50, 50, 50, 50], 0.04)
        return model

    def test_pipelined_at_least_as_fast(self):
        model = self.model()
        assert model.pipelined_parallel_time(8) <= \
            model.parallel_time(8) + 1e-12
        assert model.pipelined_speedup(8) >= model.speedup(8) - 1e-9

    def test_pipelined_bound_by_slower_phase(self):
        model = self.model()
        par = model.pipelined_parallel_time(8)
        assert par >= model._bound_parallel[8] - 1e-12
        assert par >= model._weave_parallel[8] - 1e-12

    def test_untracked_raises(self):
        with pytest.raises(KeyError):
            self.model().pipelined_parallel_time(3)


class TestLoopStreamDetector:
    def run(self, lsd, code_blocks=1):
        cfg = westmere(num_cores=1, core_model="ooo")
        cfg = dataclasses.replace(cfg, core=dataclasses.replace(
            cfg.core, loop_stream_detector=lsd))
        spec = KernelSpec(name="lsd", code_blocks=code_blocks,
                          mem_ratio=0.1, hot_fraction=0.95,
                          body_instrs=10, branch_rand=0.0,
                          barrier_iters=0, seed=5)
        sim = ZSim(cfg, Workload(spec, 1).make_threads(
            target_instrs=20_000))
        res = sim.run()
        return res, sim.cores[0]

    def test_lsd_streams_tight_loops(self):
        _res, core = self.run(lsd=True, code_blocks=1)
        assert core.lsd_streams > core.bbls * 0.8

    def test_lsd_speeds_up_frontend_bound_loops(self):
        """A loop of multi-µop instructions is decode-bound (the
        4-1-1-1 rule allows one such instruction per cycle); streaming
        from the LSD removes the decode bottleneck."""
        from repro.core import ZSim as _ZSim
        from repro.dbt.instrumentation import InstrumentedStream
        from repro.isa.opcodes import Opcode
        from repro.isa.program import BBLExec, Instruction, Program
        from repro.isa.registers import gp
        from repro.virt.process import SimThread

        def run(lsd):
            program = Program("lsd-fe")
            instrs = []
            for i in range(6):
                # STORE and LOAD_ALU both decode to 2+ µops.
                instrs.append(Instruction(Opcode.STORE, gp(14),
                                          gp(2 + i % 4)))
                instrs.append(Instruction(Opcode.LOAD_ALU, gp(14),
                                          gp(1), gp(6 + i % 4)))
            block = program.add_block(instrs)
            base = 0x1000_0000

            def stream():
                for i in range(1500):
                    addrs = []
                    for slot in range(block.num_mem_slots):
                        addrs.append(base + ((i * 4 + slot) * 8) % 4096)
                    yield BBLExec(block, tuple(addrs))

            cfg = westmere(num_cores=1, core_model="ooo")
            cfg = dataclasses.replace(cfg, core=dataclasses.replace(
                cfg.core, loop_stream_detector=lsd, lsd_max_uops=40))
            sim = _ZSim(cfg, threads=[
                SimThread(InstrumentedStream(stream()))])
            return sim.run()
        on = run(True)
        off = run(False)
        assert on.cycles < 0.9 * off.cycles

    def test_lsd_off_by_default(self):
        _res, core = self.run(lsd=False)
        assert core.lsd_streams == 0

    def test_large_loops_do_not_stream(self):
        """A loop body bigger than the µop queue cannot stream."""
        cfg = westmere(num_cores=1, core_model="ooo")
        cfg = dataclasses.replace(cfg, core=dataclasses.replace(
            cfg.core, loop_stream_detector=True, lsd_max_uops=4))
        spec = KernelSpec(name="lsd-big", code_blocks=1, body_instrs=24,
                          mem_ratio=0.1, barrier_iters=0, seed=5)
        sim = ZSim(cfg, Workload(spec, 1).make_threads(
            target_instrs=10_000))
        sim.run()
        assert sim.cores[0].lsd_streams == 0

    def test_reference_machine_enables_lsd(self):
        from repro.baselines.reference import reference_simulator
        cfg = westmere(num_cores=1, core_model="ooo")
        wl = Workload(KernelSpec(name="lsd-ref", code_blocks=1,
                                 barrier_iters=0, seed=5), 1)
        sim = reference_simulator(cfg, wl.make_threads(
            target_instrs=5_000))
        sim.run()
        assert sim.cores[0].lsd_streams > 0
