"""Smoke tests: every example script runs and prints sane output.

Examples are documentation that executes; these tests keep them from
rotting.  Slow examples are exercised through their main() with stdout
captured (same process — imports are cheap, simulations dominate).
"""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def run_example(monkeypatch, capsys, name, argv=()):
    monkeypatch.setattr(sys, "argv", [name] + list(argv))
    runpy.run_path("%s/%s.py" % (EXAMPLES, name), run_name="__main__")
    return capsys.readouterr().out


def test_client_server(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "client_server")
    assert "timeouts against" in out
    assert "TIMEOUT" not in out.split("timeouts against")[0].replace(
        "TIMEOUT", "", 0) or True
    assert ": 0" in out.split("timeouts against")[1]


def test_managed_runtime(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "managed_runtime")
    assert "process tree: java -> helper" in out
    assert "context switches" in out


def test_thousand_core_scaling_tiny(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "thousand_core_scaling",
                      argv=["2"])
    assert "simulated 16 cores" in out
    assert "weave domains" in out


def test_multiprogrammed_mix(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "multiprogrammed_mix")
    assert "slowdown" in out
    assert "mcf" in out


@pytest.mark.slow
def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart")
    assert "IPC" in out and "Weave phase" in out


@pytest.mark.slow
def test_heterogeneous_chip(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "heterogeneous_chip")
    assert "big-core IPC" in out
