"""Tests for the client-server and managed-runtime workload builders."""


from repro.config import small_test_system, westmere
from repro.core import ZSim
from repro.virt.process import ThreadState
from repro.virt.timing import VirtualClock
from repro.workloads.server import (
    RequestLog,
    client_server_threads,
    managed_runtime_threads,
)


class TestClientServer:
    def run(self, num_clients=2, requests=6, cores=4):
        cfg = westmere(num_cores=cores, core_model="simple")
        sim = ZSim(cfg)
        log = RequestLog()
        for thread in client_server_threads(num_clients=num_clients,
                                            requests_per_client=requests,
                                            request_log=log, sim=sim):
            sim.add_thread(thread)
        result = sim.run()
        return cfg, sim, result, log

    def test_all_requests_served(self):
        _cfg, sim, _res, log = self.run(num_clients=2, requests=6)
        assert len(log.requests) == 12
        assert sim.scheduler.all_done

    def test_latencies_positive_and_bounded(self):
        _cfg, _sim, res, log = self.run()
        latencies = log.latencies()
        assert all(lat >= 0 for lat in latencies)
        assert max(latencies) < res.cycles

    def test_no_timeouts_under_simulated_time(self):
        """The paper's motivation: with virtualized timing, protocol
        timeouts evaluate against simulated time and do not fire."""
        cfg, _sim, _res, log = self.run()
        clock = VirtualClock(cfg.core.freq_mhz)
        assert log.timeouts(clock, timeout_ns=500_000) == 0

    def test_tight_timeout_does_fire(self):
        """Sanity: an absurdly tight budget is detected as expired."""
        cfg, _sim, _res, log = self.run()
        clock = VirtualClock(cfg.core.freq_mhz)
        assert log.timeouts(clock, timeout_ns=1) > 0

    def test_one_process_per_party(self):
        cfg = westmere(num_cores=4, core_model="simple")
        threads = client_server_threads(num_clients=3)
        names = {t.process.name for t in threads}
        assert names == {"server", "client-0", "client-1", "client-2"}


class TestManagedRuntime:
    def test_more_threads_than_cores(self):
        cfg = small_test_system(num_cores=4, core_model="simple")
        threads = managed_runtime_threads(cfg, phases=2,
                                          iters_per_phase=60)
        assert len(threads) == cfg.num_cores + 2  # workers + GC
        sim = ZSim(cfg, threads=threads)
        sim.run()
        assert sim.scheduler.all_done
        assert sim.scheduler.context_switches > len(threads)

    def test_gc_threads_sleep_on_simulated_time(self):
        cfg = small_test_system(num_cores=2, core_model="simple")
        threads = managed_runtime_threads(cfg, phases=2,
                                          iters_per_phase=40,
                                          gc_sleep_cycles=50_000)
        sim = ZSim(cfg, threads=threads)
        res = sim.run()
        # The run must span at least the GC sleep periods.
        assert res.cycles >= 2 * 50_000
        gc = [t for t in sim.scheduler.threads
              if t.name.startswith("gc-")]
        assert all(t.state == ThreadState.DONE for t in gc)

    def test_workers_share_barrier_phases(self):
        cfg = small_test_system(num_cores=3, core_model="simple")
        threads = managed_runtime_threads(cfg, phases=3,
                                          iters_per_phase=30,
                                          gc_threads=0)
        sim = ZSim(cfg, threads=threads)
        sim.run()
        assert sim.scheduler.all_done
        # Workers finish within a few intervals of each other
        # (barrier-synchronized).
        cycles = [c.cycle for c in sim.cores if c.instrs > 0]
        assert max(cycles) - min(cycles) < 5_000
