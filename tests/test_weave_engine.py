"""Tests for the weave engine: event graphs, domains, delays, crossings."""

from repro.core.domains import CoreWeave
from repro.core.weave import WeaveEngine
from repro.memory.access import AccessContext, AccessResult, StepKind
from repro.memory.weave import CacheBankWeave


def make_result(core_id, line, latency, steps):
    """Fabricate an AccessResult with an explicit weave chain."""
    ctx = AccessContext(core_id, line, write=False)
    ctx.latency = latency
    for comp, offset, kind in steps:
        ctx.add_step_at(comp, offset, kind)
    return AccessResult(ctx)


def engine_with_bank(num_cores=2, bank_tile=0, tiles=1, ports=1,
                     latency=14, crossing_deps=True, mlp=1):
    cores = [CoreWeave("core%d" % i, i, tile=min(i, tiles - 1))
             for i in range(num_cores)]
    bank = CacheBankWeave("l3b0", latency=latency, ports=ports,
                          tile=bank_tile)
    engine = WeaveEngine(cores, [bank], num_tiles=tiles, num_domains=0,
                         crossing_deps=crossing_deps,
                         mlp_window={i: mlp for i in range(num_cores)})
    return engine, bank


class TestRetiming:
    def test_uncontended_access_has_zero_delay(self):
        engine, bank = engine_with_bank(num_cores=1)
        res = make_result(0, 5, 30, [(bank, 10, StepKind.HIT)])
        delays = engine.run_interval({0: [(100, res)]})
        assert delays == {0: 0}

    def test_bank_contention_delays_one_core(self):
        engine, bank = engine_with_bank(num_cores=2, ports=1)
        res0 = make_result(0, 5, 30, [(bank, 10, StepKind.HIT)])
        res1 = make_result(1, 9, 30, [(bank, 10, StepKind.HIT)])
        delays = engine.run_interval({0: [(100, res0)],
                                      1: [(100, res1)]})
        assert sorted(delays.values()) == [0, bank.PORT_OCCUPANCY]

    def test_delay_propagates_through_serial_chain(self):
        """With MLP=1, a delayed first access pushes the second."""
        engine, bank = engine_with_bank(num_cores=2, ports=1, mlp=1)
        t0 = {0: [(100, make_result(0, 1, 30, [(bank, 10, StepKind.HIT)])),
                  (140, make_result(0, 2, 30, [(bank, 10, StepKind.HIT)]))],
              1: [(100, make_result(1, 3, 30, [(bank, 10, StepKind.HIT)]))]}
        delays = engine.run_interval(t0)
        # One of the cores loses the port race at cycle 110 and its
        # second access (core 0) inherits any accumulated delay.
        assert max(delays.values()) >= 2

    def test_mlp_allows_overlap(self):
        """With a wide MLP window, two accesses of one core overlap, so
        total delay is smaller than with MLP=1."""
        def run(mlp):
            engine, bank = engine_with_bank(num_cores=1, ports=1, mlp=mlp)
            trace = {0: [
                (100, make_result(0, 1, 30, [(bank, 0, StepKind.HIT)])),
                (100, make_result(0, 2, 30, [(bank, 0, StepKind.HIT)])),
                (100, make_result(0, 3, 30, [(bank, 0, StepKind.HIT)])),
            ]}
            return engine.run_interval(trace)[0]
        assert run(4) <= run(1)

    def test_writeback_events_execute(self):
        engine, bank = engine_with_bank(num_cores=1)
        ctx = AccessContext(0, 7, write=True)
        ctx.latency = 30
        ctx.add_step_at(bank, 10, StepKind.MISS)
        ctx.add_wback(bank)
        res = AccessResult(ctx)
        engine.run_interval({0: [(50, res)]})
        assert bank.events_executed == 2  # miss + writeback

    def test_empty_interval(self):
        engine, _bank = engine_with_bank()
        assert engine.run_interval({}) == {}
        assert engine.run_interval({0: []}) == {}


class TestDomainsAndCrossings:
    def test_cross_domain_dependency_counted(self):
        engine, bank = engine_with_bank(num_cores=2, bank_tile=1, tiles=2)
        # Core 0 is in domain 0; the bank is in domain 1.
        res = make_result(0, 5, 30, [(bank, 10, StepKind.HIT)])
        engine.run_interval({0: [(100, res)]})
        crossings = sum(d.crossings for d in engine.domains)
        assert crossings >= 2  # req->bank and bank->resp

    def test_same_domain_no_crossings(self):
        engine, bank = engine_with_bank(num_cores=1, bank_tile=0, tiles=1)
        res = make_result(0, 5, 30, [(bank, 10, StepKind.HIT)])
        engine.run_interval({0: [(100, res)]})
        assert sum(d.crossings for d in engine.domains) == 0

    def test_crossing_ablation_counts_requeues(self):
        """Without crossing dependencies, premature crossings requeue."""
        engine, bank = engine_with_bank(num_cores=2, bank_tile=1, tiles=2,
                                        crossing_deps=False)
        traces = {core: [(100 + i * 7,
                          make_result(core, i, 30,
                                      [(bank, 10, StepKind.HIT)]))
                         for i in range(10)]
                  for core in range(2)}
        engine.run_interval(traces)
        assert sum(d.crossing_requeues for d in engine.domains) > 0

    def test_stats_accumulate(self):
        engine, bank = engine_with_bank()
        res = make_result(0, 5, 30, [(bank, 10, StepKind.HIT)])
        engine.run_interval({0: [(100, res)]})
        engine.run_interval({0: [(2100, res)]})
        assert engine.stats.intervals == 2
        assert engine.stats.events == 6  # (req + bank + resp) x 2


class TestDeterminismAndReuse:
    def test_deterministic(self):
        def run():
            engine, bank = engine_with_bank(num_cores=4, ports=1)
            traces = {c: [(100 + c, make_result(c, i, 30,
                                                [(bank, 10,
                                                  StepKind.HIT)]))
                          for i in range(5)]
                      for c in range(4)}
            return engine.run_interval(traces)
        assert run() == run()

    def test_event_pool_recycled_between_intervals(self):
        engine, bank = engine_with_bank()
        res = make_result(0, 5, 30, [(bank, 10, StepKind.HIT)])
        engine.run_interval({0: [(100, res)]})
        allocated = engine.pool.allocated
        engine.run_interval({0: [(2100, res)]})
        assert engine.pool.allocated == allocated  # fully recycled

    def test_reset_clears_components(self):
        engine, bank = engine_with_bank()
        res = make_result(0, 5, 30, [(bank, 10, StepKind.HIT)])
        engine.run_interval({0: [(100, res)]})
        engine.reset()
        assert bank.events_executed == 0
        assert engine.stats.intervals == 0


class TestConservatism:
    def test_response_never_before_lower_bound(self):
        """Every core's response is at or after its bound cycle (delays
        are always >= 0), the invariant feedback relies on."""
        engine, bank = engine_with_bank(num_cores=4, ports=1)
        traces = {}
        for core in range(4):
            traces[core] = [(100 * i + core,
                             make_result(core, i * 4 + core, 25,
                                         [(bank, 8, StepKind.HIT)]))
                            for i in range(8)]
        delays = engine.run_interval(traces)
        assert all(d >= 0 for d in delays.values())


class TestJournal:
    def test_journal_records_figure4_chains(self):
        """With a journal attached, every executed event is recorded and
        per-access chains show the Figure 4 structure: REQ -> component
        events -> RESP, in nondecreasing time, each started at or after
        its lower bound."""
        cores = [CoreWeave("core0", 0)]
        bank = CacheBankWeave("l3b0", latency=14, ports=1)
        journal = []
        engine = WeaveEngine(cores, [bank], num_tiles=1,
                             mlp_window={0: 1}, journal=journal)
        trace = {0: [
            (100, make_result(0, 1, 30, [(bank, 10, StepKind.HIT)])),
            (200, make_result(0, 2, 30, [(bank, 10, StepKind.MISS)])),
        ]}
        engine.run_interval(trace)
        assert len(journal) == 6  # (REQ, bank, RESP) x 2
        kinds = [entry[1] for entry in journal]
        assert kinds.count("REQ") == 2
        assert kinds.count("RESP") == 2
        for _name, _kind, min_cycle, start, done, core_id in journal:
            assert start >= min_cycle
            assert done >= start
            assert core_id == 0
        # Events execute in nondecreasing start order (single domain).
        starts = [entry[3] for entry in journal]
        assert starts == sorted(starts)
